(** Topology families (see family.mli for the contract). *)

type t = {
  graph : Topology.t;
  family : string;
  rows : int;
  cols : int;
  max_block : int;
  clean : bool array array;
  footprint : int -> int;
  block_capacity : int -> int;
  build_local : int -> Topology.t;
  block_qubits : r0:int -> c0:int -> block:int -> int array;
  tile_of_qubit : int -> int * int;
}

(* --- Chimera ---------------------------------------------------------------- *)

(* Cells with every qubit working; broken qubits knock their whole cell out
   of the pool (that is how the tiler honors hardware drop-out while keeping
   blocks isomorphic to pristine local Chimeras). *)
let chimera_clean graph ~m ~shore =
  Array.init m (fun r ->
      Array.init m (fun c ->
          let base = 2 * shore * ((r * m) + c) in
          let ok = ref true in
          for w = 0 to (2 * shore) - 1 do
            if not (Topology.is_working graph (base + w)) then ok := false
          done;
          !ok))

(* Global qubit ids of the k x k block at (r0, c0), in local-index order:
   slot [l] is the qubit playing the role of qubit [l] of the local C_k.
   Both numberings are [2*shore*cell + within], so only the cell translates. *)
let chimera_block_qubits ~m ~shore ~r0 ~c0 ~block =
  Array.init (2 * shore * block * block) (fun l ->
      let cell = l / (2 * shore) in
      let within = l mod (2 * shore) in
      let i = cell / block and j = cell mod block in
      (2 * shore * (((r0 + i) * m) + c0 + j)) + within)

let chimera graph =
  let m = Topology.param graph "m" and shore = Topology.param graph "shore" in
  { graph;
    family = "chimera";
    rows = m;
    cols = m;
    max_block = m;
    clean = chimera_clean graph ~m ~shore;
    footprint = (fun k -> k);
    block_capacity = (fun k -> 2 * shore * k * k);
    build_local = (fun k -> Chimera.create ~shore k);
    block_qubits = (fun ~r0 ~c0 ~block -> chimera_block_qubits ~m ~shore ~r0 ~c0 ~block);
    tile_of_qubit =
      (fun q ->
         let cell = q / (2 * shore) in
         (cell / m, cell mod m)) }

(* --- Pegasus ---------------------------------------------------------------- *)

(* Tile (r, c) of a P_m holds the 12 vertical segments (0, w=c, *, z=r) plus
   the 12 horizontal segments (1, w=r, *, z=c) — the segments whose
   perpendicular offset and parallel position meet at grid square (r, c).
   Because z < m-1, boundary tiles are partial (row m-1 has no verticals,
   column m-1 no horizontals) and tile (m-1, m-1) is empty; together the
   tiles partition all 24 m (m-1) qubits.

   A k-block at origin (r0, c0) is the image of a local P_{k+1} under the
   coordinate translation
     vertical   (0, w, t, z) -> (0, w + c0, t, z + r0)
     horizontal (1, w, t, z) -> (1, w + r0, t, z + c0)
   which shifts every segment by a multiple of 12 in each axis and therefore
   preserves the crossing geometry exactly: every local coupler (internal,
   external, odd) exists between the image qubits.  The block's qubits live
   in the (k+1) x (k+1) tile square at (r0, c0) — adjacent blocks share a
   boundary offset column, so the footprint over-reserves one tile row and
   column relative to the local size, keeping placed blocks disjoint.

   The idealized node set includes boundary segments that cross nothing;
   {!Pegasus.create} marks them broken ("fabric trimming", 8 (m-1) qubits).
   Local trimming is at least as aggressive as the global one restricted to
   the window (a locally connected qubit maps onto a globally connected
   one), so a clean tile need only demand that no {e additional} qubits are
   broken beyond the pristine fabric's own trimming. *)

let pegasus_clean graph ~m ~pristine =
  let tile_ok r c =
    let ok = ref true in
    let check coords =
      let q = Pegasus.qubit_of_coords ~m coords in
      if Topology.is_working pristine q && not (Topology.is_working graph q) then
        ok := false
    in
    for track = 0 to 11 do
      if r <= m - 2 then
        check { Pegasus.orientation = 0; offset = c; track; position = r };
      if c <= m - 2 then
        check { Pegasus.orientation = 1; offset = r; track; position = c }
    done;
    !ok
  in
  Array.init m (fun r -> Array.init m (fun c -> tile_ok r c))

let pegasus graph =
  let m = Pegasus.size graph in
  let vertical_shifts = Pegasus.vertical_shifts graph in
  let horizontal_shifts = Pegasus.horizontal_shifts graph in
  let build_local k =
    Pegasus.create ~vertical_shifts ~horizontal_shifts (k + 1)
  in
  let pristine =
    Pegasus.create ~vertical_shifts ~horizontal_shifts m
  in
  { graph;
    family = "pegasus";
    rows = m;
    cols = m;
    max_block = m - 1;
    clean = pegasus_clean graph ~m ~pristine;
    footprint = (fun k -> k + 1);
    (* Working qubits of a pristine local P_{k+1}: 24 (k+1) k minus the
       8 k trimmed boundary segments.  Exact for the default shift lists; a
       (close) upper bound otherwise — only a ladder starting point. *)
    block_capacity = (fun k -> 8 * k * ((3 * k) + 2));
    build_local;
    block_qubits =
      (fun ~r0 ~c0 ~block ->
         let local_m = block + 1 in
         Array.init (2 * local_m * 12 * (local_m - 1)) (fun l ->
             let c = Pegasus.coords_of_qubit ~m:local_m l in
             if c.Pegasus.orientation = 0 then
               Pegasus.qubit_of_coords ~m
                 { c with
                   Pegasus.offset = c.Pegasus.offset + c0;
                   position = c.Pegasus.position + r0 }
             else
               Pegasus.qubit_of_coords ~m
                 { c with
                   Pegasus.offset = c.Pegasus.offset + r0;
                   position = c.Pegasus.position + c0 }));
    tile_of_qubit =
      (fun q ->
         let c = Pegasus.coords graph q in
         if c.Pegasus.orientation = 0 then (c.Pegasus.position, c.Pegasus.offset)
         else (c.Pegasus.offset, c.Pegasus.position)) }

(* --- Dispatch --------------------------------------------------------------- *)

let is_pegasus graph =
  let name = graph.Topology.name in
  String.length name >= 8 && String.sub name 0 8 = "pegasus-"

let of_topology graph =
  match Topology.param graph "shore" with
  | _ -> chimera graph
  | exception Not_found ->
    if is_pegasus graph then pegasus graph
    else
      invalid_arg
        (Printf.sprintf "Family.of_topology: %s is not a known topology family"
           graph.Topology.name)

let max_feasible_block t =
  (* Largest clean square on an empty floor (classic dynamic program):
     bounds what any single job can ever get, independent of batch
     composition... in tiles; converted to the largest block whose footprint
     fits inside it. *)
  let dp = Array.make_matrix t.rows t.cols 0 in
  let best = ref 0 in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      dp.(r).(c) <-
        (if not t.clean.(r).(c) then 0
         else if r = 0 || c = 0 then 1
         else 1 + min dp.(r - 1).(c) (min dp.(r).(c - 1) dp.(r - 1).(c - 1)));
      best := max !best dp.(r).(c)
    done
  done;
  let rec fit k = if k >= 1 && t.footprint k > !best then fit (k - 1) else k in
  fit t.max_block
