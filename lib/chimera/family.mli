(** A topology {e family}: the tile structure a hardware graph exposes so the
    tiler can carve it into independent blocks without knowing the fabric.

    Both supported fabrics are built from an [rows x cols] grid of {e tiles}
    that partition the qubits ({!tile_of_qubit}).  A {e block} of size [k] is
    a square region that induces a subgraph isomorphic to a small pristine
    fabric of the same family ([build_local k]); [block_qubits] names the
    global qubit playing the role of each local qubit, which is what lets an
    embedding found on the local graph be translated verbatim onto the chip
    — the heart of composition invariance (an embedding is a function of the
    job alone, never of where the batch scheduler places it).

    For Chimera a tile is a unit cell and a [k]-block spans exactly [k x k]
    tiles.  For Pegasus a tile is the bundle of 24 segments meeting at one
    grid square; a [k]-block is a translated [P_{k+1}] whose footprint is
    [(k+1) x (k+1)] tiles (adjacent blocks would share a boundary offset
    column, so the placement must reserve the extra row and column —
    {!footprint} tells the tiler how much floor each block really uses). *)

type t = {
  graph : Topology.t;  (** the full hardware graph being carved *)
  family : string;  (** ["chimera"] or ["pegasus"] *)
  rows : int;  (** tile-grid height *)
  cols : int;  (** tile-grid width *)
  max_block : int;  (** largest block size the fabric could ever host *)
  clean : bool array array;
      (** [clean.(r).(c)]: tile usable for carving — no qubit broken beyond
          what a pristine fabric of this family already trims *)
  footprint : int -> int;
      (** tiles per side a placed block of size [k] occupies *)
  block_capacity : int -> int;
      (** working qubits a clean block of size [k] offers (a ladder starting
          point, not a promise) *)
  build_local : int -> Topology.t;
      (** pristine local fabric a size-[k] block is isomorphic to; its
          [name] is family-distinct, so cache keys never collide across
          fabrics *)
  block_qubits : r0:int -> c0:int -> block:int -> int array;
      (** global qubit ids of the block at tile [(r0, c0)], indexed by local
          qubit id of [build_local block] *)
  tile_of_qubit : int -> int * int;  (** [(row, col)] of a qubit's tile *)
}

val chimera : Chimera.t -> t
(** Requires the ["m"]/["shore"] params that {!Chimera.create} sets. *)

val pegasus : Pegasus.t -> t
(** Requires a graph built by {!Pegasus.create} (its shift lists are
    recovered from the params, so exotic crossing geometries carve
    correctly). *)

val of_topology : Topology.t -> t
(** Dispatch on the graph's identity: a ["shore"] param means Chimera, a
    ["pegasus-"] name prefix means Pegasus.  Raises [Invalid_argument] for
    anything else. *)

val max_feasible_block : t -> int
(** Largest block whose footprint fits inside the largest clean square of
    the (empty) tile grid — the ceiling on what any single job can get,
    independent of batch composition. *)
