(** The Chimera hardware graph of a D-Wave 2000Q (section 2, Figure 1).

    A [C_m] Chimera graph is an [m x m] grid of unit cells; each unit cell is
    a complete bipartite K_{t,t} over a horizontal partition ([t] qubits) and
    a vertical partition.  Horizontal-partition qubits connect to their peers
    in the cells north and south; vertical-partition qubits to their peers
    east and west.  A D-Wave 2000Q is a [C16] with shore size [t = 4]
    (2048 qubits); larger shores model the "greater connectivity" of later
    hardware generations.

    Qubit numbering follows D-Wave's convention:
    [q = 2t*(row*m + col) + t*partition + index], with [partition] 0 for the
    horizontal side.

    Real devices always have inoperable ("broken") qubits; [create ~broken]
    models the drop-out the paper mentions. *)

type t = Topology.t
(** Chimera graphs are plain topologies; everything in {!Topology} applies. *)

type coords = {
  row : int;
  col : int;
  partition : int;  (** 0 = horizontal, 1 = vertical *)
  index : int;  (** 0..t-1 within the partition *)
}

val create : ?broken:int list -> ?shore:int -> int -> t
(** [create m] builds a [C_m] with shore 4; raises [Invalid_argument] for
    [m < 1] or [shore < 1]. *)

val dwave_2000q : t
(** [C16], shore 4, no broken qubits. *)

val size : t -> int
(** The grid dimension [m]. *)

val shore : t -> int

val num_qubits : t -> int
val num_working_qubits : t -> int

val qubit : t -> coords -> int
val coords : t -> int -> coords

val is_working : t -> int -> bool
val adjacent : t -> int -> int -> bool
val neighbors : t -> int -> int list
val iter_neighbors : t -> int -> (int -> unit) -> unit
val edges : t -> (int * int) list
val num_edges : t -> int
val degree : t -> int -> int

(** [has_odd_cycles t] is always false: Chimera graphs are bipartite
    (section 4.4 — no 3-cycles exist, hence most Table 5 cells cannot be
    realized without minor embedding). *)
val has_odd_cycles : t -> bool
