(** A Pegasus-family hardware graph — the "increased qubit counts, greater
    connectivity" future generation the paper's conclusion anticipates
    (D-Wave's Advantage topology; Boothby et al., "Next-Generation Topology
    of D-Wave Quantum Processors").

    Construction follows the geometric description: qubits are length-12
    line segments on a grid.  Qubit [(u, w, k, z)] has orientation [u]
    (0 = vertical), perpendicular offset [w in 0..m-1], track [k in 0..11]
    and parallel offset [z in 0..m-2].  Couplers:

    - {e internal}: a vertical and a horizontal segment that cross;
      crossings are controlled by the per-track shift lists (our defaults
      are the canonical [2,2,2,2,10,10,10,10,6,6,6,6] /
      [6,6,6,6,2,2,2,2,10,10,10,10]);
    - {e external}: collinear segments in consecutive [z] positions;
    - {e odd}: the two segments of a track pair ([2j], [2j+1]) at the same
      position.

    This yields the idealized [24 m (m-1)]-qubit fabric (P16: 5760 qubits;
    production chips clip boundary segments to ~5640).  Unlike Chimera,
    Pegasus contains odd cycles (triangles), so some Table 5 cells embed
    with shorter chains — measured in the [ext7] benchmark.  Node numbering
    is ours: [q = ((u*m + w)*12 + k)*(m-1) + z]. *)

type t = Topology.t

type coords = {
  orientation : int;  (** 0 = vertical, 1 = horizontal *)
  offset : int;  (** w: 0..m-1 *)
  track : int;  (** k: 0..11 *)
  position : int;  (** z: 0..m-2 *)
}

val create :
  ?broken:int list ->
  ?vertical_shifts:int array ->
  ?horizontal_shifts:int array ->
  int ->
  t
(** [create m] builds a [P_m]-family graph; [m >= 2].  Shift lists must have
    length 12 with values in [0, 12).  The shift lists are packed into
    [Topology.params] (keys ["vshifts"]/["hshifts"], 4 bits per track), so
    two graphs with the same [m] but different crossing geometry have
    distinct identities — the embedding cache keys on the params list. *)

val default_vertical_shifts : int array
val default_horizontal_shifts : int array
(** The canonical Advantage shift lists (Boothby et al.). *)

val size : t -> int

val vertical_shifts : t -> int array
val horizontal_shifts : t -> int array
(** The shift lists the graph was built with, unpacked from its params. *)

val qubit : t -> coords -> int
val coords : t -> int -> coords

val qubit_of_coords : m:int -> coords -> int
val coords_of_qubit : m:int -> int -> coords
(** Pure index arithmetic for a [P_m] numbering, usable without a graph —
    {!Family} translates local block coordinates through these. *)
