(** Generic hardware topologies.

    A topology is a fixed undirected graph over qubit indices with a
    per-qubit working mask.  {!Chimera} (the D-Wave 2000Q layout the paper
    targets) and {!Pegasus} (the "greater connectivity" future generation
    the paper's conclusion anticipates) both produce values of this type, so
    the embedder and the pipeline are topology-agnostic.

    Adjacency is stored in compressed-sparse-row form, mirroring
    [Qac_ising.Problem.t]: the working neighbors of qubit [q] occupy
    [col.(row_start.(q)) .. col.(row_start.(q+1) - 1)], sorted ascending.
    Broken qubits have empty rows.  Hot paths (the embedder's Dijkstra) walk
    [row_start]/[col] directly; everything else goes through the accessors. *)

type t = {
  name : string;  (** e.g. ["chimera-16x16x4"] *)
  params : (string * int) list;  (** named structural parameters, e.g. [("m", 16)] *)
  row_start : int array;  (** CSR row table, length [num_qubits + 1] *)
  col : int array;  (** concatenated sorted neighbor rows (each edge twice) *)
  working : bool array;
  num_edges : int;  (** memoized distinct working-working edge count *)
}

(** [create ~name ~params ~num_qubits ~edges ~broken] builds a topology from
    an edge list; broken qubits lose all their edges.  Duplicate edges (in
    either orientation) collapse; construction is O(V + E) via a hashed
    edge set. *)
val create :
  name:string ->
  params:(string * int) list ->
  num_qubits:int ->
  edges:(int * int) list ->
  ?broken:int list ->
  unit ->
  t

val num_qubits : t -> int
val num_working_qubits : t -> int
val is_working : t -> int -> bool

val neighbors : t -> int -> int list
(** Ascending.  Allocates; use {!iter_neighbors} in hot loops. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Allocation-free CSR row walk, neighbors ascending. *)

val adjacent : t -> int -> int -> bool
(** Binary search in the sorted row of the first argument: O(log degree). *)

val edges : t -> (int * int) list
(** Each edge once, as [(low, high)], sorted ascending. *)

val num_edges : t -> int
(** O(1) (memoized at construction). *)

val degree : t -> int -> int
(** O(1). *)

val max_degree : t -> int

val param : t -> string -> int
(** Raises [Not_found] for unknown parameters. *)

(** [is_bipartite t] — Chimera graphs are bipartite (no odd cycles,
    section 4.4); Pegasus is not (its odd couplers create triangles). *)
val is_bipartite : t -> bool
