type t = Topology.t

type coords = {
  row : int;
  col : int;
  partition : int;
  index : int;
}

let qubit_of_coords ~m ~shore { row; col; partition; index } =
  if row < 0 || row >= m || col < 0 || col >= m then invalid_arg "Chimera: cell out of range";
  if partition < 0 || partition > 1 then invalid_arg "Chimera: bad partition";
  if index < 0 || index >= shore then invalid_arg "Chimera: bad index";
  (2 * shore * ((row * m) + col)) + (shore * partition) + index

let coords_of_qubit ~m ~shore q =
  if q < 0 || q >= 2 * shore * m * m then invalid_arg "Chimera: qubit out of range";
  let cell = q / (2 * shore) in
  let within = q mod (2 * shore) in
  { row = cell / m; col = cell mod m; partition = within / shore; index = within mod shore }

let create ?(broken = []) ?(shore = 4) m =
  if m < 1 then invalid_arg "Chimera.create: size must be >= 1";
  if shore < 1 then invalid_arg "Chimera.create: shore must be >= 1";
  let num_qubits = 2 * shore * m * m in
  let edges = ref [] in
  for row = 0 to m - 1 do
    for col = 0 to m - 1 do
      (* K_{t,t} within the cell. *)
      for i = 0 to shore - 1 do
        for k = 0 to shore - 1 do
          edges :=
            ( qubit_of_coords ~m ~shore { row; col; partition = 0; index = i },
              qubit_of_coords ~m ~shore { row; col; partition = 1; index = k } )
            :: !edges
        done
      done;
      (* Horizontal partition couples north-south. *)
      if row + 1 < m then
        for i = 0 to shore - 1 do
          edges :=
            ( qubit_of_coords ~m ~shore { row; col; partition = 0; index = i },
              qubit_of_coords ~m ~shore { row = row + 1; col; partition = 0; index = i } )
            :: !edges
        done;
      (* Vertical partition couples east-west. *)
      if col + 1 < m then
        for i = 0 to shore - 1 do
          edges :=
            ( qubit_of_coords ~m ~shore { row; col; partition = 1; index = i },
              qubit_of_coords ~m ~shore { row; col = col + 1; partition = 1; index = i } )
            :: !edges
        done
    done
  done;
  Topology.create
    ~name:(Printf.sprintf "chimera-%dx%dx%d" m m shore)
    ~params:[ ("m", m); ("shore", shore) ]
    ~num_qubits ~edges:!edges ~broken ()

let dwave_2000q = create 16

let size t = Topology.param t "m"
let shore t = Topology.param t "shore"

let num_qubits = Topology.num_qubits
let num_working_qubits = Topology.num_working_qubits

let qubit t c = qubit_of_coords ~m:(size t) ~shore:(shore t) c
let coords t q = coords_of_qubit ~m:(size t) ~shore:(shore t) q

let is_working = Topology.is_working
let adjacent = Topology.adjacent
let neighbors = Topology.neighbors
let iter_neighbors = Topology.iter_neighbors
let edges = Topology.edges
let num_edges = Topology.num_edges
let degree = Topology.degree

let has_odd_cycles t = not (Topology.is_bipartite t)
