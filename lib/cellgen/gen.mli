(** Derivation of quadratic pseudo-Boolean penalty functions from truth
    tables — the machinery behind Tables 2, 3 and 4 of the paper.

    Given a truth table, we look for coefficients h, J such that every valid
    row evaluates to a common minimum energy [k] and every invalid row to at
    least [k + gap], maximizing [gap] subject to the hardware coefficient
    box.  This is exactly the paper's system of (in)equalities, solved as a
    linear program.  When no ancilla-free solution exists (XOR, XNOR — the
    only 2-input/1-output cases, per Whitfield et al.), ancilla columns are
    searched as in Table 3. *)

type derived = {
  table : Truthtab.t;  (** the (possibly augmented) table actually realized *)
  num_ancillas : int;
  problem : Qac_ising.Problem.t;
  ground_energy : float;  (** the paper's [k] *)
  gap : float;  (** the paper's margin between valid and invalid rows *)
}

val min_gap : float
(** Gaps below this threshold count as "no solution" (1e-6). *)

(** [derive_exact ?range ?adjacency table] solves the LP for [table] as
    given (no ancilla search).  [adjacency i j] (for [i < j]) says whether
    the target fabric offers a coupler between cell variables [i] and [j];
    disallowed pairs have their J pinned to zero, so the result is
    realizable on that connectivity verbatim (default: fully connected, the
    paper's assumption).  [None] when the optimum gap is ~0, i.e. the system
    of inequalities is unsolvable in the paper's sense — which an adjacency
    restriction can cause even where the unrestricted cell exists. *)
val derive_exact :
  ?range:Qac_ising.Scale.range ->
  ?adjacency:(int -> int -> bool) ->
  Truthtab.t ->
  derived option

(** [derive ?range ?adjacency ?max_ancillas table] tries 0 ancillas, then 1,
    ... up to [max_ancillas] (default 2), enumerating or sampling
    ancilla-column assignments, and returns the gap-maximal solution at the
    smallest sufficient ancilla count.  [adjacency] is applied at every
    ancilla count, and must therefore answer for ancilla indices too
    (ancillas take indices [n .. n + max_ancillas - 1] of the augmented
    table). *)
val derive :
  ?range:Qac_ising.Scale.range ->
  ?adjacency:(int -> int -> bool) ->
  ?max_ancillas:int ->
  ?seed:int ->
  Truthtab.t ->
  derived option

(** [verify d] exhaustively checks that the ground states of [d.problem] are
    exactly the valid rows of [d.table] and that the spectral gap is at least
    [d.gap - 1e-6]. *)
val verify : derived -> bool

(** [row_energy_coeffs ~num_vars row] lays out the energy of a spin row as a
    linear function of the coefficient vector [h_0..h_{n-1}, J_01, J_02, ...]
    — the symbolic rows of Tables 2 and 4. *)
val row_energy_coeffs : num_vars:int -> Qac_ising.Problem.spin array -> float array

val coeff_names : num_vars:int -> string array
(** ["h_0"; ...; "J_0,1"; ...] matching [row_energy_coeffs] order. *)
