open Qac_ising

type derived = {
  table : Truthtab.t;
  num_ancillas : int;
  problem : Problem.t;
  ground_energy : float;
  gap : float;
}

let min_gap = 1e-6

(* The LP's variable layout: n linear coefficients, n(n-1)/2 quadratic
   coefficients in (i, j) lexicographic order, then k (the common ground
   energy) and g (the gap). *)

let num_pairs n = n * (n - 1) / 2

let pair_index ~num_vars i j =
  assert (i < j);
  (* Pairs (0,1) (0,2) ... (0,n-1) (1,2) ... *)
  let before_i = (i * ((2 * num_vars) - i - 1)) / 2 in
  before_i + (j - i - 1)

let row_energy_coeffs ~num_vars spins =
  let coeffs = Array.make (num_vars + num_pairs num_vars) 0.0 in
  for i = 0 to num_vars - 1 do
    coeffs.(i) <- float_of_int spins.(i)
  done;
  for i = 0 to num_vars - 1 do
    for j = i + 1 to num_vars - 1 do
      coeffs.(num_vars + pair_index ~num_vars i j) <- float_of_int (spins.(i) * spins.(j))
    done
  done;
  coeffs

let coeff_names ~num_vars =
  let names = Array.make (num_vars + num_pairs num_vars) "" in
  for i = 0 to num_vars - 1 do
    names.(i) <- Printf.sprintf "h_%d" i
  done;
  for i = 0 to num_vars - 1 do
    for j = i + 1 to num_vars - 1 do
      names.(num_vars + pair_index ~num_vars i j) <- Printf.sprintf "J_%d,%d" i j
    done
  done;
  names

(* LP solutions carry ~1e-12 numerical noise; snap values that are within
   tolerance of a multiple of 1/12 (the paper's cells use twelfths) so the
   emitted coefficients are clean and respect the hardware box exactly. *)
let snap v =
  let twelfth = Float.round (v *. 12.0) /. 12.0 in
  if Float.abs (twelfth -. v) <= 1e-7 then twelfth else v

let problem_of_solution ~num_vars coeffs =
  let coeffs = Array.map snap coeffs in
  let h = Array.sub coeffs 0 num_vars in
  let j = ref [] in
  for i = 0 to num_vars - 1 do
    for jj = i + 1 to num_vars - 1 do
      let v = coeffs.(num_vars + pair_index ~num_vars i jj) in
      if Float.abs v > 1e-12 then j := ((i, jj), v) :: !j
    done
  done;
  Problem.create ~num_vars ~h ~j:!j ()

let derive_exact ?(range = Scale.dwave_2000q) ?adjacency (table : Truthtab.t) =
  let n = table.Truthtab.num_vars in
  let num_coeffs = n + num_pairs n in
  (* Inverse of [pair_index]: which (i, j) a quadratic LP variable stands
     for, needed to consult the adjacency predicate per pair. *)
  let pairs = Array.make (num_pairs n) (0, 0) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pairs.(pair_index ~num_vars:n i j) <- (i, j)
    done
  done;
  let allowed i j = match adjacency with None -> true | Some f -> f i j in
  let k_index = num_coeffs in
  let g_index = num_coeffs + 1 in
  let num_lp_vars = num_coeffs + 2 in
  let extend coeffs ~k ~g =
    let row = Array.make num_lp_vars 0.0 in
    Array.blit coeffs 0 row 0 num_coeffs;
    row.(k_index) <- k;
    row.(g_index) <- g;
    row
  in
  let constraints =
    List.map
      (fun row ->
         let spins = Truthtab.spins_of_row row in
         let coeffs = row_energy_coeffs ~num_vars:n spins in
         if Truthtab.is_valid table row then
           (* E(row) - k = 0 *)
           { Lp.coeffs = extend coeffs ~k:(-1.0) ~g:0.0; relation = Lp.Eq; rhs = 0.0 }
         else
           (* E(row) - k - g >= 0 *)
           { Lp.coeffs = extend coeffs ~k:(-1.0) ~g:(-1.0); relation = Lp.Ge; rhs = 0.0 })
      (Truthtab.all_rows ~num_vars:n)
  in
  let bounds =
    Array.init num_lp_vars (fun v ->
        if v < n then (range.Scale.h_min, range.Scale.h_max)
        else if v < num_coeffs then begin
          (* A coupler the target fabric lacks is pinned to zero: the LP
             then finds the best cell realizable on that connectivity, or
             proves none exists (forcing the ancilla ladder). *)
          let i, j = pairs.(v - n) in
          if allowed i j then (range.Scale.j_min, range.Scale.j_max)
          else (0.0, 0.0)
        end
        else if v = k_index then (neg_infinity, infinity)
        else (0.0, 1e6) (* the gap; capped to keep the LP bounded *))
  in
  let objective = Array.init num_lp_vars (fun v -> if v = g_index then 1.0 else 0.0) in
  match Lp.solve Lp.Maximize objective constraints ~bounds with
  | Lp.Infeasible | Lp.Unbounded -> None
  | Lp.Optimal { value = gap; solution } ->
    if gap < min_gap then None
    else
      Some
        { table;
          num_ancillas = 0;
          problem = problem_of_solution ~num_vars:n solution;
          ground_energy = solution.(k_index);
          gap }

(* Ancilla-column search.  Each candidate assigns [a] ancilla bits to every
   valid row.  Flipping an ancilla column globally maps solutions to
   solutions (negate the corresponding h and J signs), so the first valid
   row's ancillas can be pinned to all-false, halving the space per
   ancilla. *)

let ancilla_assignments ~num_ancillas ~num_valid ~seed ~budget =
  let bits = num_ancillas * (num_valid - 1) in
  let decode code =
    List.init num_valid (fun row ->
        Array.init num_ancillas (fun a ->
            if row = 0 then false
            else
              let bit = (num_ancillas * (row - 1)) + a in
              (code lsr bit) land 1 = 1))
  in
  if bits <= 14 then List.init (1 lsl bits) decode
  else begin
    (* Too many to enumerate: random sample (dedup not worth the trouble at
       this scale). *)
    let state = Random.State.make [| seed |] in
    List.init budget (fun _ ->
        List.init num_valid (fun row ->
            Array.init num_ancillas (fun _ ->
                if row = 0 then false else Random.State.bool state)))
  end

let better a b =
  match a, b with
  | None, x | x, None -> x
  | Some da, Some db -> if da.gap >= db.gap then Some da else Some db

let derive ?(range = Scale.dwave_2000q) ?adjacency ?(max_ancillas = 2) ?(seed = 0) table =
  let num_valid = List.length table.Truthtab.valid in
  let rec try_ancillas a =
    if a > max_ancillas then None
    else begin
      let result =
        if a = 0 then derive_exact ~range ?adjacency table
        else begin
          let candidates = ancilla_assignments ~num_ancillas:a ~num_valid ~seed ~budget:512 in
          List.fold_left
            (fun best ancillas ->
               let augmented = Truthtab.augment table ~ancillas in
               let d =
                 Option.map
                   (fun d -> { d with num_ancillas = a })
                   (derive_exact ~range ?adjacency augmented)
               in
               better best d)
            None candidates
        end
      in
      match result with
      | Some _ as r -> r
      | None -> try_ancillas (a + 1)
    end
  in
  try_ancillas 0

let verify d =
  let result = Exact.solve d.problem in
  let expected =
    List.map Truthtab.spins_of_row d.table.Truthtab.valid
    |> List.sort compare
  in
  let got = List.sort compare result.Exact.ground_states in
  let states_match = expected = got in
  let gap_ok =
    match result.Exact.first_excited_energy with
    | None -> true
    | Some second -> second -. result.Exact.ground_energy >= d.gap -. 1e-6
  in
  let k_ok = Float.abs (result.Exact.ground_energy -. d.ground_energy) <= 1e-6 in
  states_match && gap_ok && k_ok
