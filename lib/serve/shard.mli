(** Sharded serving tier: a pool of {!Serve} schedulers, one per OCaml
    domain, each with its {e own} embedding cache, fed by cache-affinity
    routing.

    Why sharding beats one big scheduler: the expensive, memoizable work in
    this pipeline is minor embedding, and PR 3/4 made its cache keyed on the
    {e structure} of a problem ({!Qac_embed.Cache.structure_digest}).  A
    shared cache across domains serializes on its lock and still thrashes
    once the working set of distinct shapes exceeds capacity; a per-shard
    cache with all same-shaped traffic routed to one shard keeps each
    shard's cache small, hot, and uncontended — the same reason the D-Wave
    cloud client pins a problem family to one solver endpoint.

    Routing hashes the structure digest {e alone} and folds it over the
    shard count: deterministic (same digest, same shard — for any pool of
    this size, forever), balanced over random digests, and a pure
    single-hash function of the digest — per-shard salted scores survive
    only as a tie-break, so no salt can ever split same-shaped traffic
    across shards.  The pool's size is fixed at {!create}; a pool of a
    different size is a different routing function.  {!Round_robin}
    routing exists as the control arm for benchmarks.

    Tickets are pool-global: {!submit} returns a ticket valid with
    {!poll}/{!cancel} whatever shard the job landed on.  {!try_submit} is
    the admission-control path — a full target shard rejects with a
    retry-after hint instead of blocking, which is what a network front end
    must do (a blocked accept loop is a dead server). *)

type routing =
  | Affinity  (** rendezvous-hash the problem-structure digest (default) *)
  | Round_robin  (** ignore structure; benchmark control arm *)

type t

type admission =
  | Accepted of { ticket : int; shard : int }
  | Rejected of { retry_after_ms : float }
      (** target shard at capacity; the hint scales with its queue depth
          and measured throughput *)

type shard_stats = {
  shard : int;
  serve : Serve.stats;
  cache : Qac_embed.Cache.stats;
  latency : Qac_diag.Hist.t;
}

(** [create ~solver ~graph ()] starts [num_shards] (default 1) {!Serve}
    schedulers.  Every optional parameter mirrors {!Serve.create} and is
    applied to each shard; [cache_capacity] (default 64) sizes each
    shard's private embedding cache; [num_threads] is {e per shard}.
    [store] plugs one shared {!Qac_embed.Store} behind every shard's
    cache: misses fall through to the persistent corpus and promote into
    the missing shard's own LRU, and every fresh embedding is written
    through — a restarted pool starts warm.
    [solver] must be pure up to its arguments — the composition-invariance
    contract makes a job's response independent of the shard that serves
    it, so any routing policy (and any shard count) returns bit-identical
    results. *)
val create :
  ?num_shards:int ->
  ?routing:routing ->
  ?queue_capacity:int ->
  ?batch_jobs:int ->
  ?batch_window_s:float ->
  ?num_threads:int ->
  ?tiler_params:Qac_embed.Tiler.params ->
  ?chain_break:Qac_embed.Embedding.chain_break ->
  ?cache_capacity:int ->
  ?store:Qac_embed.Store.t ->
  ?max_retries:int ->
  solver:(deadline:float option -> Qac_ising.Problem.t -> Qac_anneal.Sampler.response) ->
  graph:Qac_chimera.Topology.t ->
  unit ->
  t

val num_shards : t -> int

val rendezvous : digest:Digest.t -> num_shards:int -> int
(** The pure routing function: the unsalted [FNV-1a digest] folded over
    [num_shards] — a function of the digest and the shard count only.
    Exposed for tests and for clients that want to predict placement. *)

val route : t -> Qac_ising.Problem.t -> int
(** The shard {!submit} would choose for this problem under {!Affinity}
    (under {!Round_robin} the actual choice also advances a counter). *)

val submit : t -> Serve.job -> int
(** Route and enqueue; blocks on the target shard's backpressure.  Returns
    a pool-global ticket. *)

val try_submit : t -> Serve.job -> admission
(** Route and enqueue without blocking: load is shed (with a retry-after
    hint) when the target shard's queue is full. *)

val poll : t -> int -> Serve.result option
(** [None] while the job is queued or in flight; the result once its batch
    finished.  Raises [Invalid_argument] on an unknown ticket. *)

val cancel : t -> int -> bool
(** Cancel a still-queued job (see {!Serve.cancel}).  Raises
    [Invalid_argument] on an unknown ticket. *)

val stats : t -> shard_stats array
(** Per-shard snapshot, index [i] = shard [i]. *)

val latency : t -> Qac_diag.Hist.t
(** Pool-wide latency: the per-shard histograms merged. *)

val metrics : t -> string
(** Prometheus-style text exposition: one
    [qac_<name>{shard="<i>"} <value>] line per counter per shard — the
    {!Serve} summary counters (jobs, placed, deferrals, retries, failures,
    timeouts, canceled, coalesced, queue depth, occupancy, jobs/s), the
    embed-cache hit/miss/eviction/entry/store-hit counts, and the
    log-bucketed latency histogram (cumulative [_bucket{le="..."}] lines
    plus [_sum]/[_count] and p50/p99 gauges).  When the pool was created
    with a [store], unlabeled pool-wide [qac_store_*] lines follow:
    [embeddings], [problems], [embed_hits], [embed_misses],
    [problem_hits], [problem_misses], [writes], [load_failures]. *)

val drain : t -> (int * Serve.result) list
(** Drain every shard and return all results as [(ticket, result)] in
    ticket order.  Idempotent. *)
