(** Length-prefixed JSON wire protocol (see protocol.mli). *)

module Problem = Qac_ising.Problem
module Sampler = Qac_anneal.Sampler
module Cache = Qac_embed.Cache
module Hist = Qac_diag.Hist

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* --- JSON values ------------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* %.17g round-trips any finite double exactly; integral values print as
   integers so tickets and counters stay readable. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_to_string j =
  let b = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f ->
      if Float.is_nan f || Float.abs f = infinity then
        fail "json_to_string: non-finite number"
      else Buffer.add_string b (float_repr f)
    | Str s -> escape_string b s
    | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
           if i > 0 then Buffer.add_char b ',';
           emit x)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
           if i > 0 then Buffer.add_char b ',';
           escape_string b k;
           Buffer.add_char b ':';
           emit v)
        fields;
      Buffer.add_char b '}'
  in
  emit j;
  Buffer.contents b

(* Recursive-descent parser.  [pos] always points at the next unread byte. *)
let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos >= n || s.[!pos] <> c then fail "JSON: expected '%c' at byte %d" c !pos;
    advance ()
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "JSON: bad literal at byte %d" !pos
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "JSON: truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "JSON: unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
        if !pos >= n then fail "JSON: unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           let cp = parse_hex4 () in
           (* Surrogate pair: a high surrogate must be followed by \uDC00-DFFF. *)
           if cp >= 0xd800 && cp <= 0xdbff then begin
             if not (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u') then
               fail "JSON: lone high surrogate";
             pos := !pos + 2;
             let lo = parse_hex4 () in
             if not (lo >= 0xdc00 && lo <= 0xdfff) then
               fail "JSON: invalid low surrogate";
             add_utf8 b (0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00))
           end
           else if cp >= 0xdc00 && cp <= 0xdfff then fail "JSON: lone low surrogate"
           else add_utf8 b cp
         | c -> fail "JSON: bad escape '\\%c'" c);
        loop ()
      | c -> Buffer.add_char b c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do advance () done;
    if !pos = start then fail "JSON: expected a value at byte %d" start;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "JSON: bad number at byte %d" start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "JSON: unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "JSON: expected ',' or '}' at byte %d" !pos
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "JSON: expected ',' or ']' at byte %d" !pos
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "JSON: trailing bytes at %d" !pos;
  v

(* --- Typed accessors --------------------------------------------------------- *)

let field obj name =
  match obj with
  | Obj fields ->
    (match List.assoc_opt name fields with
     | Some v -> v
     | None -> fail "missing field %S" name)
  | _ -> fail "expected an object with field %S" name

let field_opt obj name =
  match obj with
  | Obj fields ->
    (match List.assoc_opt name fields with Some Null | None -> None | v -> v)
  | _ -> None

let as_num = function Num f -> f | _ -> fail "expected a number"
let as_int j =
  let f = as_num j in
  if Float.is_integer f then int_of_float f else fail "expected an integer"
let as_str = function Str s -> s | _ -> fail "expected a string"
let as_bool = function Bool b -> b | _ -> fail "expected a boolean"
let as_arr = function Arr l -> l | _ -> fail "expected an array"

(* --- Domain codecs ----------------------------------------------------------- *)

let problem_to_json (p : Problem.t) =
  Obj
    [ ("num_vars", Num (float_of_int p.Problem.num_vars));
      ("offset", Num p.Problem.offset);
      ("h", Arr (Array.to_list (Array.map (fun v -> Num v) p.Problem.h)));
      ( "j",
        Arr
          (Array.to_list
             (Array.map
                (fun ((i, j), v) ->
                   Arr [ Num (float_of_int i); Num (float_of_int j); Num v ])
                p.Problem.couplers)) ) ]

let problem_of_json j =
  let num_vars = as_int (field j "num_vars") in
  let offset = as_num (field j "offset") in
  let h = Array.of_list (List.map as_num (as_arr (field j "h"))) in
  let couplers =
    List.map
      (fun entry ->
         match as_arr entry with
         | [ i; jj; v ] -> ((as_int i, as_int jj), as_num v)
         | _ -> fail "coupler entries are [i, j, value]")
      (as_arr (field j "j"))
  in
  try Problem.create ~num_vars ~h ~j:couplers ~offset ()
  with Invalid_argument m -> fail "bad problem: %s" m

let sample_to_json (s : Sampler.sample) =
  Obj
    [ ( "spins",
        Arr
          (Array.to_list
             (Array.map (fun sp -> Num (float_of_int sp)) s.Sampler.spins)) );
      ("energy", Num s.Sampler.energy);
      ("num_occurrences", Num (float_of_int s.Sampler.num_occurrences)) ]

let sample_of_json j =
  { Sampler.spins = Array.of_list (List.map as_int (as_arr (field j "spins")));
    energy = as_num (field j "energy");
    num_occurrences = as_int (field j "num_occurrences") }

let response_to_json (r : Sampler.response) =
  Obj
    [ ("samples", Arr (List.map sample_to_json r.Sampler.samples));
      ("num_reads", Num (float_of_int r.Sampler.num_reads));
      ("elapsed_seconds", Num r.Sampler.elapsed_seconds);
      ("timed_out", Bool r.Sampler.timed_out) ]

let response_of_json j =
  { Sampler.samples = List.map sample_of_json (as_arr (field j "samples"));
    num_reads = as_int (field j "num_reads");
    elapsed_seconds = as_num (field j "elapsed_seconds");
    timed_out = as_bool (field j "timed_out") }

let job_to_json (job : Serve.job) =
  Obj
    [ ("id", Str job.Serve.id);
      ("problem", problem_to_json job.Serve.problem);
      ( "timeout_ms",
        match job.Serve.timeout_ms with None -> Null | Some ms -> Num ms ) ]

let job_of_json j =
  { Serve.id = as_str (field j "id");
    problem = problem_of_json (field j "problem");
    timeout_ms = Option.map as_num (field_opt j "timeout_ms") }

let status_to_json = function
  | Serve.Done -> Str "done"
  | Serve.Timed_out -> Str "timed_out"
  | Serve.Canceled -> Str "canceled"
  | Serve.Failed msg -> Obj [ ("failed", Str msg) ]

let status_of_json = function
  | Str "done" -> Serve.Done
  | Str "timed_out" -> Serve.Timed_out
  | Str "canceled" -> Serve.Canceled
  | Obj [ ("failed", Str msg) ] -> Serve.Failed msg
  | _ -> fail "bad status"

let result_to_json (r : Serve.result) =
  Obj
    [ ("id", Str r.Serve.id);
      ("status", status_to_json r.Serve.status);
      ( "response",
        match r.Serve.response with None -> Null | Some resp -> response_to_json resp );
      ("batch", Num (float_of_int r.Serve.batch));
      ("wait_seconds", Num r.Serve.wait_seconds);
      ("solve_seconds", Num r.Serve.solve_seconds) ]

let result_of_json j =
  { Serve.id = as_str (field j "id");
    status = status_of_json (field j "status");
    response = Option.map response_of_json (field_opt j "response");
    batch = as_int (field j "batch");
    wait_seconds = as_num (field j "wait_seconds");
    solve_seconds = as_num (field j "solve_seconds") }

let finite f = if Float.is_nan f || Float.abs f = infinity then 0.0 else f

let stats_to_json (stats : Shard.shard_stats array) =
  Arr
    (Array.to_list
       (Array.map
          (fun (s : Shard.shard_stats) ->
             let sv = s.Shard.serve and c = s.Shard.cache and lat = s.Shard.latency in
             Obj
               [ ("shard", Num (float_of_int s.Shard.shard));
                 ( "serve",
                   Obj
                     [ ("batches", Num (float_of_int sv.Serve.batches));
                       ("jobs_done", Num (float_of_int sv.Serve.jobs_done));
                       ("placed", Num (float_of_int sv.Serve.placed));
                       ("deferrals", Num (float_of_int sv.Serve.deferrals));
                       ("retries", Num (float_of_int sv.Serve.retries));
                       ("failures", Num (float_of_int sv.Serve.failures));
                       ("timeouts", Num (float_of_int sv.Serve.timeouts));
                       ("canceled", Num (float_of_int sv.Serve.canceled));
                       ("coalesced", Num (float_of_int sv.Serve.coalesced));
                       ("queue_depth", Num (float_of_int sv.Serve.queue_depth));
                       ("mean_occupancy", Num (finite sv.Serve.mean_occupancy));
                       ("jobs_per_second", Num (finite sv.Serve.jobs_per_second)) ] );
                 ( "cache",
                   Obj
                     [ ("hits", Num (float_of_int c.Cache.hits));
                       ("misses", Num (float_of_int c.Cache.misses));
                       ("evictions", Num (float_of_int c.Cache.evictions));
                       ("entries", Num (float_of_int c.Cache.entries));
                       ("store_hits", Num (float_of_int c.Cache.store_hits)) ] );
                 ( "latency",
                   Obj
                     [ ("count", Num (float_of_int (Hist.count lat)));
                       ("sum_seconds", Num (finite (Hist.sum lat)));
                       ("p50_seconds", Num (finite (Hist.p50 lat)));
                       ("p90_seconds", Num (finite (Hist.p90 lat)));
                       ("p99_seconds", Num (finite (Hist.p99 lat))) ] ) ])
          stats))

(* --- Requests and replies ---------------------------------------------------- *)

type request =
  | Submit of Serve.job
  | Submit_sat of { id : string; dimacs : string; timeout_ms : float option }
  | Poll of int
  | Cancel of int
  | Stats
  | Metrics
  | Shutdown

type reply =
  | Submitted of { ticket : int; shard : int }
  | Busy of { retry_after_ms : float }
  | Pending
  | Completed of Serve.result
  | Cancel_ok of bool
  | Stats_json of json
  | Metrics_text of string
  | Shutdown_ok
  | Error of string

let request_to_json = function
  | Submit job -> Obj [ ("op", Str "submit"); ("job", job_to_json job) ]
  | Submit_sat { id; dimacs; timeout_ms } ->
    Obj
      [ ("op", Str "submit_sat");
        ("id", Str id);
        ("dimacs", Str dimacs);
        ("timeout_ms", match timeout_ms with None -> Null | Some ms -> Num ms) ]
  | Poll ticket -> Obj [ ("op", Str "poll"); ("ticket", Num (float_of_int ticket)) ]
  | Cancel ticket ->
    Obj [ ("op", Str "cancel"); ("ticket", Num (float_of_int ticket)) ]
  | Stats -> Obj [ ("op", Str "stats") ]
  | Metrics -> Obj [ ("op", Str "metrics") ]
  | Shutdown -> Obj [ ("op", Str "shutdown") ]

let request_of_json j =
  match as_str (field j "op") with
  | "submit" -> Submit (job_of_json (field j "job"))
  | "submit_sat" ->
    Submit_sat
      { id = as_str (field j "id");
        dimacs = as_str (field j "dimacs");
        timeout_ms = Option.map as_num (field_opt j "timeout_ms") }
  | "poll" -> Poll (as_int (field j "ticket"))
  | "cancel" -> Cancel (as_int (field j "ticket"))
  | "stats" -> Stats
  | "metrics" -> Metrics
  | "shutdown" -> Shutdown
  | op -> fail "unknown op %S" op

let reply_to_json = function
  | Submitted { ticket; shard } ->
    Obj
      [ ("ok", Bool true);
        ("ticket", Num (float_of_int ticket));
        ("shard", Num (float_of_int shard)) ]
  | Busy { retry_after_ms } ->
    Obj
      [ ("ok", Bool false);
        ("error", Str "busy");
        ("retry_after_ms", Num retry_after_ms) ]
  | Pending -> Obj [ ("ok", Bool true); ("done", Bool false) ]
  | Completed r ->
    Obj [ ("ok", Bool true); ("done", Bool true); ("result", result_to_json r) ]
  | Cancel_ok b -> Obj [ ("ok", Bool true); ("canceled", Bool b) ]
  | Stats_json s -> Obj [ ("ok", Bool true); ("stats", s) ]
  | Metrics_text m -> Obj [ ("ok", Bool true); ("metrics", Str m) ]
  | Shutdown_ok -> Obj [ ("ok", Bool true); ("shutdown", Bool true) ]
  | Error msg -> Obj [ ("ok", Bool false); ("error", Str msg) ]

let reply_of_json j =
  match as_bool (field j "ok") with
  | false ->
    (match as_str (field j "error") with
     | "busy" -> Busy { retry_after_ms = as_num (field j "retry_after_ms") }
     | msg -> Error msg)
  | true ->
    (match field_opt j "ticket" with
     | Some t -> Submitted { ticket = as_int t; shard = as_int (field j "shard") }
     | None ->
       (match field_opt j "done" with
        | Some (Bool false) -> Pending
        | Some (Bool true) -> Completed (result_of_json (field j "result"))
        | Some _ -> fail "bad done flag"
        | None ->
          (match field_opt j "canceled" with
           | Some b -> Cancel_ok (as_bool b)
           | None ->
             (match field_opt j "stats" with
              | Some s -> Stats_json s
              | None ->
                (match field_opt j "metrics" with
                 | Some m -> Metrics_text (as_str m)
                 | None ->
                   (match field_opt j "shutdown" with
                    | Some (Bool true) -> Shutdown_ok
                    | _ -> fail "unrecognized reply"))))))

(* --- Framing ----------------------------------------------------------------- *)

let max_frame_len = 16 * 1024 * 1024

let write_all fd buf off len =
  let off = ref off and left = ref len in
  while !left > 0 do
    let n = Unix.write fd buf !off !left in
    off := !off + n;
    left := !left - n
  done

(* [false] on EOF before the first byte; Protocol_error on EOF mid-read. *)
let read_all fd buf len =
  let off = ref 0 in
  while !off < len do
    let n = Unix.read fd buf !off (len - !off) in
    if n = 0 then
      if !off = 0 then raise Exit else fail "connection closed mid-frame";
    off := !off + n
  done

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame_len then fail "frame too large (%d bytes)" len;
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

let read_frame fd =
  let header = Bytes.create 4 in
  match read_all fd header 4 with
  | exception Exit -> None
  | () ->
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_frame_len then
      fail "declared frame length %d outside [0, %d]" len max_frame_len;
    let payload = Bytes.create len in
    (match read_all fd payload len with
     | exception Exit -> fail "connection closed mid-frame"
     | () -> Some (Bytes.unsafe_to_string payload))

(* --- Client helpers ---------------------------------------------------------- *)

let connect sockaddr =
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     Unix.close fd;
     raise e);
  fd

let call fd request =
  write_frame fd (json_to_string (request_to_json request));
  match read_frame fd with
  | None -> fail "server closed the connection"
  | Some payload -> reply_of_json (json_of_string payload)
