(** Socket front end for a {!Shard} pool.

    One accept loop serves connections sequentially; each connection may
    pipeline any number of request frames.  The loop never blocks on
    compute — submissions go through {!Shard.try_submit} (admission
    control: a full shard answers [Busy] with a retry-after hint instead of
    stalling the socket) and polls are non-blocking — so a connection only
    occupies the loop for the time it takes to parse and route frames.
    Clients that want concurrency should pipeline on one connection.

    A [Shutdown] request stops the loop, drains the pool, and makes {!run}
    return the drained results.  {!create} ignores [SIGPIPE]
    process-wide so a client that disconnects mid-reply surfaces as
    [EPIPE] (connection dropped, loop continues) rather than process
    death. *)

type t

val create : pool:Shard.t -> sockaddr:Unix.sockaddr -> unit -> t
(** Bind and listen.  TCP addresses get [SO_REUSEADDR]; port 0 binds an
    ephemeral port (read it back with {!sockaddr}).  An existing file at a
    Unix-domain path is unlinked first. *)

val sockaddr : t -> Unix.sockaddr
(** The bound address — the actual port when created with port 0. *)

val run : t -> (int * Serve.result) list
(** Serve until a [Shutdown] request arrives, then drain the pool and
    return every result in ticket order.  Malformed frames get an [Error]
    reply (when the connection still admits one) and drop only that
    connection. *)
