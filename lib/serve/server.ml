(** Socket front end (see server.mli). *)

type t = {
  pool : Shard.t;
  listen_fd : Unix.file_descr;
  mutable stopping : bool;
}

let create ~pool ~sockaddr () =
  (* A client closing mid-reply must be an EPIPE error on our write, not
     process death. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (match sockaddr with
   | Unix.ADDR_UNIX path when Sys.file_exists path -> Unix.unlink path
   | _ -> ());
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0
  in
  (try
     (match sockaddr with
      | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
      | Unix.ADDR_UNIX _ -> ());
     Unix.bind fd sockaddr;
     Unix.listen fd 16
   with e ->
     Unix.close fd;
     raise e);
  { pool; listen_fd = fd; stopping = false }

let sockaddr t = Unix.getsockname t.listen_fd

let respond t (request : Protocol.request) : Protocol.reply =
  let submit job =
    match Shard.try_submit t.pool job with
    | Shard.Accepted { ticket; shard } -> Protocol.Submitted { ticket; shard }
    | Shard.Rejected { retry_after_ms } -> Busy { retry_after_ms }
  in
  match request with
  | Submit job -> submit job
  | Submit_sat { id; dimacs; timeout_ms } ->
    (* Frontend errors (bad DIMACS, refused weight spread) are the
       client's fault and get a structured Error reply; the connection
       stays in sync and keeps serving. *)
    (match
       let compiled = Qac_sat.Compile.compile (Qac_sat.Dimacs.parse dimacs) in
       { Serve.id; problem = compiled.Qac_sat.Compile.problem; timeout_ms }
     with
     | exception Qac_diag.Diag.Error d -> Error (Qac_diag.Diag.to_string d)
     | job -> submit job)
  | Poll ticket ->
    (match Shard.poll t.pool ticket with
     | Some result -> Completed result
     | None -> Pending
     | exception Invalid_argument msg -> Error msg)
  | Cancel ticket ->
    (match Shard.cancel t.pool ticket with
     | ok -> Cancel_ok ok
     | exception Invalid_argument msg -> Error msg)
  | Stats -> Stats_json (Protocol.stats_to_json (Shard.stats t.pool))
  | Metrics -> Metrics_text (Shard.metrics t.pool)
  | Shutdown ->
    t.stopping <- true;
    Shutdown_ok

(* Serve one connection until EOF, a framing error, or shutdown.  A
   malformed frame gets an [Error] reply when the stream still has a frame
   boundary to write into, then the connection drops — once lengths can't
   be trusted there is nothing safe to resynchronize on. *)
let handle_connection t conn =
  let send reply =
    Protocol.write_frame conn (Protocol.json_to_string (Protocol.reply_to_json reply))
  in
  let rec loop () =
    match Protocol.read_frame conn with
    | None -> ()
    | Some payload ->
      (* A bad payload inside a well-formed frame leaves the stream in
         sync: answer Error and keep serving this connection. *)
      (match Protocol.request_of_json (Protocol.json_of_string payload) with
       | exception Protocol.Protocol_error msg ->
         send (Error msg);
         loop ()
       | request ->
         send (respond t request);
         if not t.stopping then loop ())
    | exception Protocol.Protocol_error msg ->
      (try send (Error msg) with _ -> ())
  in
  Fun.protect ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
       try loop () with
       | Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ())

let run t =
  while not t.stopping do
    match Unix.accept ~cloexec:true t.listen_fd with
    | conn, _ -> handle_connection t conn
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done;
  let addr = try Some (sockaddr t) with Unix.Unix_error _ -> None in
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match addr with
   | Some (Unix.ADDR_UNIX path) when path <> "" && Sys.file_exists path ->
     (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
   | _ -> ());
  Shard.drain t.pool
