(** Batch solver service: a job scheduler that packs independent Ising
    problems onto one annealer-shaped graph ({!Qac_embed.Tiler}) and serves
    them with deadlines.

    Jobs enter a bounded submission queue — {!submit} blocks when it is full
    (backpressure), {!try_submit} rejects instead (the admission-control
    path the shard pool builds on).  A scheduler running on its own OCaml
    domain flushes the queue into batches — when [batch_jobs] jobs are
    pending, when the oldest pending job has waited [batch_window_s], or at
    {!drain} — tiles each batch onto the graph, and solves the placed jobs
    concurrently.  The scheduler is event-driven, not polling: it sleeps in
    [select] on a self-pipe that submissions, cancellations and drain poke,
    so an idle service burns no CPU and a batch-completing submit dispatches
    immediately rather than after a poll quantum.

    Per-job deadlines are enforced twice: a job whose deadline passes while
    queued is failed without solving, and the deadline is handed to the
    solver so an in-flight job returns best-so-far partial results
    ({!Qac_anneal.Sampler.response.timed_out}).

    Jobs the tiler defers (no floor space in this batch) requeue at the
    {e front}, which guarantees progress: the first job of a batch always
    sees an empty floor.  Jobs whose embedding fails retry with a fresh
    tiling seed up to [max_retries] times before failing for good.

    The solver is a closure so this layer stays independent of the compiler
    ([Qac_core]); callers typically wrap [Pipeline.dispatch_solver].  For
    the demuxed responses to be reproducible — bit-identical whether a job
    runs alone or inside any batch, at any [num_threads] — the solver must
    be a pure function of its arguments (the stock samplers are, given a
    fixed seed).

    {b Request coalescing.}  That same purity makes duplicate work
    detectable: two jobs with bit-identical content (every coefficient's
    exact bits, plus the relative timeout) are the same computation under
    this service's fixed solver, graph, tiler params and seed.  A job that
    matches one already queued or in flight does not enqueue; it {e
    attaches} as a follower to the live job's (the {e leader}'s) work and
    receives its own ticket.  One solve runs; its response fans out to the
    leader and every follower, bit-identical, each under its own ticket
    and id with its own wait clock.  Followers consume no queue slot —
    {!try_submit} admits a duplicate even at capacity — and ride the
    leader's absolute deadline.  {!cancel} removes a single delivery; the
    underlying work is released only when its last subscriber cancels. *)

type job = {
  id : string;
  problem : Qac_ising.Problem.t;
  timeout_ms : float option;
      (** relative to submission; the absolute deadline is fixed at
          {!submit} time, so queueing delay counts against it *)
}

type status =
  | Done
  | Timed_out  (** deadline hit; [response] holds best-so-far when the
                   solver got to run, [None] when it expired in the queue *)
  | Canceled  (** {!cancel} removed the job before it was scheduled *)
  | Failed of string  (** embedding failed after retries, or too large *)

type result = {
  id : string;
  status : status;
  response : Qac_anneal.Sampler.response option;
      (** in the job's own logical variable space *)
  batch : int;  (** batch ordinal the job was finally served in, -1 if none *)
  wait_seconds : float;  (** submission to batch start *)
  solve_seconds : float;
}

type stats = {
  batches : int;
  jobs_done : int;
  placed : int;  (** successful placements (= jobs solved) *)
  deferrals : int;  (** requeues for floor space; can exceed the job count *)
  retries : int;  (** embedding-failure retries with fresh seeds *)
  failures : int;
  timeouts : int;
  canceled : int;
  coalesced : int;
      (** submissions served as followers of an identical live job; these
          never consumed a queue slot or a solve *)
  queue_depth : int;  (** distinct works currently waiting (followers do
                          not count) *)
  mean_occupancy : float;  (** mean over batches of the tiler's occupancy *)
  jobs_per_second : float;  (** jobs served / total batch processing time *)
}

type t

(** [create ~solver ~graph ()] starts the scheduler domain.
    [queue_capacity] bounds the submission queue (default 256);
    [batch_jobs] (default 16) and [batch_window_s] (default 0.01) set the
    flush policy; [num_threads] parallelizes tiling ladders and per-job
    solves; [tiler_params]/[embed_cache] are handed to {!Qac_embed.Tiler};
    [chain_break] ({!Qac_embed.Embedding.chain_break}, default [Vote])
    sets how broken chains resolve when responses unembed;
    [max_retries] (default 2) caps embedding-failure retries.
    [trace] records one ["batch"] span per flush (counters: jobs, placed,
    deferred, failed, queue-depth, occupancy-pct) plus service-wide summary
    values; it is written only from the scheduler domain, so read it after
    {!drain}. *)
val create :
  ?queue_capacity:int ->
  ?batch_jobs:int ->
  ?batch_window_s:float ->
  ?num_threads:int ->
  ?tiler_params:Qac_embed.Tiler.params ->
  ?chain_break:Qac_embed.Embedding.chain_break ->
  ?embed_cache:Qac_embed.Cache.t ->
  ?max_retries:int ->
  ?trace:Qac_diag.Trace.t ->
  solver:(deadline:float option -> Qac_ising.Problem.t -> Qac_anneal.Sampler.response) ->
  graph:Qac_chimera.Topology.t ->
  unit ->
  t

val submit : t -> job -> unit
(** Enqueue; blocks while the queue is at capacity.  Raises
    [Invalid_argument] after {!drain} has started. *)

val submit_ticket : t -> job -> int
(** Like {!submit}, returning the job's ticket — its index in submission
    order, usable with {!peek} and {!cancel} while the service runs. *)

val try_submit : t -> job -> int option
(** Non-blocking admission: [None] when the queue is at capacity (the
    caller should shed load or retry later), [Some ticket] otherwise.  A
    job that coalesces onto a live duplicate is always admitted — it adds
    no work.  Raises [Invalid_argument] after {!drain} has started. *)

val peek : t -> int -> result option
(** The result of a ticket, once its batch has been processed.  [None]
    while the job is still queued or in flight.  Safe from any domain at
    any time. *)

val cancel : t -> int -> bool
(** Withdraw one delivery; the ticket's result becomes {!Canceled}.
    [false] when the ticket is unknown, already finished, or is the leader
    of an in-flight batch (in-flight work is never interrupted — per-job
    deadlines are the mechanism for bounding it).  A coalesced follower
    can always cancel before its result lands, even mid-flight: it owns no
    work.  Canceling the leader while followers remain withdraws only the
    leader's delivery — the solve still runs for the followers; the queued
    work itself is released exactly when its last subscriber cancels. *)

val queue_depth : t -> int

val latency : t -> Qac_diag.Hist.t
(** Snapshot of the end-to-end latency histogram (submit to result
    recording, seconds): every finished job — done, timed out, failed or
    canceled — contributes one observation. *)

val drain : t -> result list
(** Flush everything still queued, stop the scheduler, and return every
    job's result in submission order.  Idempotent: later calls return the
    same list. *)

val stats : t -> stats
(** Service counters; stable (and final) once {!drain} returns. *)
