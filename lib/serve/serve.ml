(** Batch solver service (see serve.mli for the contract).

    Concurrency layout: [submit]/[try_submit]/[peek]/[cancel]/[stats] run on
    caller domains; one scheduler domain owns batching, tiling, solving, and
    the trace.  All shared state (queue, results, counters, the latency
    histogram) is guarded by [mutex]; [not_full] wakes blocked submitters
    when the scheduler takes a batch or a cancellation frees a slot.

    The scheduler never polls.  The stdlib [Condition] has no timed wait, so
    the batching window is implemented with a self-pipe: the scheduler
    blocks in [Unix.select] on the read end — indefinitely while the queue
    is empty, for exactly the window remainder while a batch is filling —
    and [submit]/[cancel]/[drain] write one wake byte after mutating the
    queue.  An idle service costs zero CPU, and a submit that completes a
    batch (or arrives at an empty queue with a zero window) dispatches in
    microseconds instead of waiting out a poll quantum. *)

module Trace = Qac_diag.Trace
module Hist = Qac_diag.Hist
module Tiler = Qac_embed.Tiler
module Cache = Qac_embed.Cache
module Sampler = Qac_anneal.Sampler
open Qac_ising

type job = {
  id : string;
  problem : Problem.t;
  timeout_ms : float option;
}

type status =
  | Done
  | Timed_out
  | Canceled
  | Failed of string

type result = {
  id : string;
  status : status;
  response : Sampler.response option;
  batch : int;
  wait_seconds : float;
  solve_seconds : float;
}

type stats = {
  batches : int;
  jobs_done : int;
  placed : int;
  deferrals : int;
  retries : int;
  failures : int;
  timeouts : int;
  canceled : int;
  coalesced : int;
  queue_depth : int;
  mean_occupancy : float;
  jobs_per_second : float;
}

type pending = {
  pjob : job;
  index : int;  (* submission order; doubles as the caller-facing ticket *)
  submitted_at : float;
  deadline : float option;  (* absolute; fixed at submit *)
  tries : int;  (* embedding-failure retries so far *)
}

(* One delivery of a coalesced computation's result.  The leader's own
   delivery is a subscriber like any follower's, so cancellation treats
   them uniformly. *)
type subscriber = {
  ticket : int;
  sub_id : string;
  joined_at : float;
}

type t = {
  mutex : Mutex.t;
  not_full : Condition.t;
  wake_r : Unix.file_descr;  (* scheduler's select target *)
  wake_w : Unix.file_descr;  (* non-blocking; written by submit/cancel/drain *)
  queue_capacity : int;
  batch_jobs : int;
  batch_window_s : float;
  num_threads : int;
  tiler_params : Tiler.params;
  chain_break : Qac_embed.Embedding.chain_break;
  embed_cache : Cache.t option;
  max_retries : int;
  trace : Trace.t option;
  solver : deadline:float option -> Problem.t -> Sampler.response;
  graph : Qac_chimera.Topology.t;
  latency : Hist.t;  (* submit -> result recorded; guarded by [mutex] *)
  mutable queue : pending list;  (* head = next to serve *)
  mutable next_index : int;
  mutable draining : bool;
  mutable pipe_closed : bool;
  results : (int, result) Hashtbl.t;
  (* In-flight coalescing, all mutex-guarded.  A *work* is a queue entry
     (identified by its leader's ticket = [pending.index]); [active] maps a
     job's content digest to its live work while that work is queued or in
     flight, [subscribers] lists the work's deliveries in attach order
     (leader first), and [work_of_ticket] lets [cancel] find any ticket's
     work. *)
  active : (string, int) Hashtbl.t;
  key_of_work : (int, string) Hashtbl.t;
  subscribers : (int, subscriber list) Hashtbl.t;
  work_of_ticket : (int, int) Hashtbl.t;
  (* counters, all mutex-guarded *)
  mutable n_batches : int;
  mutable n_placed : int;
  mutable n_deferrals : int;
  mutable n_retries : int;
  mutable n_failures : int;
  mutable n_timeouts : int;
  mutable n_canceled : int;
  mutable n_coalesced : int;
  mutable occupancy_sum : float;
  mutable busy_seconds : float;
  mutable scheduler : unit Domain.t option;
}

let now = Unix.gettimeofday

let expired deadline t =
  match deadline with None -> false | Some d -> t > d

(* Per-(job, retry) tiling seed: retry 0 is exactly [params.seed], so a
   never-failing job tiles identically to a plain [Tiler.tile] call — the
   composition-invariance contract is preserved. *)
let retry_seed base tries = base + (7919 * tries)

(* Full-content digest for request coalescing: variable count, every
   coefficient's exact bit pattern, and the relative timeout.  Within one
   service the graph, solver, tiler params and base seed are fixed, so two
   jobs sharing this key are the same computation and the composition
   invariance of the tiler makes their responses bit-identical — one solve
   can serve both. *)
let coalesce_key (job : job) =
  let b = Buffer.create 1024 in
  let add_int v = Buffer.add_int64_le b (Int64.of_int v) in
  let add_float v = Buffer.add_int64_le b (Int64.bits_of_float v) in
  let p = job.problem in
  add_int p.Problem.num_vars;
  add_float p.Problem.offset;
  Array.iter add_float p.Problem.h;
  Array.iter
    (fun ((i, j), v) ->
       add_int i;
       add_int j;
       add_float v)
    p.Problem.couplers;
  (match job.timeout_ms with
   | None -> add_int 0
   | Some ms ->
     add_int 1;
     add_float ms);
  Digest.string (Buffer.contents b)

(* --- Self-pipe wakeup ------------------------------------------------------- *)

let wake_buf = Bytes.make 1 '\001'

(* Callable from any domain, with or without [mutex] held.  A full pipe
   means wakeups are already pending, so dropping the byte is harmless. *)
let wake t =
  if not t.pipe_closed then
    try ignore (Unix.write t.wake_w wake_buf 0 1) with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
      -> ()

let drain_wake_pipe t =
  let buf = Bytes.create 64 in
  let rec loop () =
    match Unix.read t.wake_r buf 0 64 with
    | 64 -> loop ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  loop ()

(* Block until woken or [timeout] elapses ([None] = forever). *)
let wait_wake t timeout =
  let tv = match timeout with None -> -1.0 | Some s -> Float.max s 0.0 in
  match Unix.select [ t.wake_r ] [] [] tv with
  | [], _, _ -> ()
  | _ -> drain_wake_pipe t
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* --- Result recording ------------------------------------------------------- *)

(* Requires [mutex] held: the results table and the latency histogram are
   written together.  Latency is end-to-end (submit to recording), so queue
   wait, tiling, solving and unembedding all count — what a client sees.

   One call terminates a *work*: the shared outcome fans out to every
   remaining subscriber (the leader and any coalesced followers), each
   under its own ticket, id and wait clock.  A missing subscriber list
   means every delivery was already canceled while the work was in flight;
   their Canceled results stand and the late outcome is dropped. *)
let record t (p : pending) ~status ~response ~batch ~batch_start ~solve_seconds =
  match Hashtbl.find_opt t.subscribers p.index with
  | None -> ()
  | Some subs ->
    let finished = now () in
    List.iter
      (fun s ->
         Hist.add t.latency (finished -. s.joined_at);
         Hashtbl.replace t.results s.ticket
           { id = s.sub_id;
             status;
             response;
             batch;
             (* A follower can attach after its batch started; its wait is
                then the full window, never negative. *)
             wait_seconds = Float.max 0.0 (batch_start -. s.joined_at);
             solve_seconds };
         Hashtbl.remove t.work_of_ticket s.ticket)
      subs;
    Hashtbl.remove t.subscribers p.index;
    (match Hashtbl.find_opt t.key_of_work p.index with
     | Some key ->
       Hashtbl.remove t.key_of_work p.index;
       (match Hashtbl.find_opt t.active key with
        | Some w when w = p.index -> Hashtbl.remove t.active key
        | _ -> ())
     | None -> ())

let rec take n = function
  | [] -> ([], [])
  | rest when n = 0 -> ([], rest)
  | x :: rest ->
    let head, tail = take (n - 1) rest in
    (x :: head, tail)

(* One flush: already-expired jobs fail fast, the rest tile onto the graph;
   placed jobs solve with their own deadlines, deferred jobs requeue at the
   front (first-of-batch always sees an empty floor, so progress is
   guaranteed), embedding failures retry with a fresh seed. *)
let process_batch t batch ~queue_depth =
  let batch_start = now () in
  let batch_no = t.n_batches in
  t.n_batches <- batch_no + 1;
  let stale, live =
    List.partition (fun p -> expired p.deadline batch_start) batch
  in
  Mutex.lock t.mutex;
  List.iter
    (fun p ->
       t.n_timeouts <- t.n_timeouts + 1;
       record t p ~status:Timed_out ~response:None ~batch:(-1) ~batch_start
         ~solve_seconds:0.0)
    stale;
  Mutex.unlock t.mutex;
  if live <> [] then begin
    let jobs = Array.of_list live in
    let problems = Array.map (fun p -> p.pjob.problem) jobs in
    let seeds =
      Array.map (fun p -> retry_seed t.tiler_params.Tiler.seed p.tries) jobs
    in
    Trace.with_span_opt t.trace "batch" (fun () ->
        let count k v = Trace.counter_opt t.trace k v in
        count "jobs" (Array.length jobs);
        count "queue-depth" queue_depth;
        let tiling =
          Tiler.tile ~params:t.tiler_params ?cache:t.embed_cache ~seeds
            ~num_threads:t.num_threads t.graph problems
        in
        let placed, deferred, failed = Tiler.counts tiling in
        let occupancy = Tiler.occupancy tiling in
        count "placed" placed;
        count "deferred" deferred;
        count "failed" failed;
        count "occupancy-pct" (int_of_float (occupancy *. 100.0));
        let deadline i = jobs.(i).deadline in
        let responses =
          Tiler.solve ~num_threads:t.num_threads ~chain_break:t.chain_break
            ~deadline ~solver:t.solver tiling
        in
        let requeue = ref [] in
        Mutex.lock t.mutex;
        t.occupancy_sum <- t.occupancy_sum +. occupancy;
        Array.iteri
          (fun i p ->
             match tiling.Tiler.outcomes.(i) with
             | Tiler.Placed _ ->
               let response = List.assoc i responses in
               let status =
                 if response.Sampler.timed_out then begin
                   t.n_timeouts <- t.n_timeouts + 1;
                   Timed_out
                 end
                 else Done
               in
               t.n_placed <- t.n_placed + 1;
               record t p ~status ~response:(Some response) ~batch:batch_no
                 ~batch_start ~solve_seconds:response.Sampler.elapsed_seconds
             | Tiler.Deferred ->
               t.n_deferrals <- t.n_deferrals + 1;
               requeue := p :: !requeue
             | Tiler.Failed msg ->
               if p.tries < t.max_retries then begin
                 t.n_retries <- t.n_retries + 1;
                 requeue := { p with tries = p.tries + 1 } :: !requeue
               end
               else begin
                 t.n_failures <- t.n_failures + 1;
                 record t p ~status:(Failed msg) ~response:None ~batch:batch_no
                   ~batch_start ~solve_seconds:0.0
               end)
          jobs;
        (* Requeue at the front, preserving relative order. *)
        t.queue <- List.rev !requeue @ t.queue;
        Mutex.unlock t.mutex)
  end;
  Mutex.lock t.mutex;
  t.busy_seconds <- t.busy_seconds +. (now () -. batch_start);
  Mutex.unlock t.mutex

let stats_locked t =
  let jobs_done = Hashtbl.length t.results in
  { batches = t.n_batches;
    jobs_done;
    placed = t.n_placed;
    deferrals = t.n_deferrals;
    retries = t.n_retries;
    failures = t.n_failures;
    timeouts = t.n_timeouts;
    canceled = t.n_canceled;
    coalesced = t.n_coalesced;
    queue_depth = List.length t.queue;
    mean_occupancy =
      (if t.n_batches = 0 then 0.0
       else t.occupancy_sum /. float_of_int t.n_batches);
    jobs_per_second =
      (if t.busy_seconds <= 0.0 then 0.0
       else float_of_int jobs_done /. t.busy_seconds) }

let stats t =
  Mutex.lock t.mutex;
  let s = stats_locked t in
  Mutex.unlock t.mutex;
  s

let latency t =
  Mutex.lock t.mutex;
  let h = Hist.copy t.latency in
  Mutex.unlock t.mutex;
  h

let queue_depth t =
  Mutex.lock t.mutex;
  let d = List.length t.queue in
  Mutex.unlock t.mutex;
  d

(* Final service-wide summary, written from the scheduler domain just
   before it exits (the trace is single-domain by contract). *)
let write_summary t =
  match t.trace with
  | None -> ()
  | Some trace ->
    let s = stats t in
    Trace.set_summary trace "serve-batches" s.batches;
    Trace.set_summary trace "serve-jobs" s.jobs_done;
    Trace.set_summary trace "serve-placed" s.placed;
    Trace.set_summary trace "serve-deferrals" s.deferrals;
    Trace.set_summary trace "serve-retries" s.retries;
    Trace.set_summary trace "serve-failures" s.failures;
    Trace.set_summary trace "serve-timeouts" s.timeouts;
    Trace.set_summary trace "serve-canceled" s.canceled;
    Trace.set_summary trace "serve-coalesced" s.coalesced;
    Trace.set_summary trace "serve-occupancy-pct"
      (int_of_float (s.mean_occupancy *. 100.0));
    Trace.set_summary trace "serve-jobs-per-sec-x1000"
      (int_of_float (s.jobs_per_second *. 1000.0));
    let lat = latency t in
    if Hist.count lat > 0 then begin
      Trace.set_summary trace "serve-latency-p50-us"
        (int_of_float (Hist.p50 lat *. 1e6));
      Trace.set_summary trace "serve-latency-p99-us"
        (int_of_float (Hist.p99 lat *. 1e6))
    end

let rec scheduler_loop t =
  Mutex.lock t.mutex;
  match t.queue with
  | [] ->
    if t.draining then begin
      Mutex.unlock t.mutex;
      write_summary t
    end
    else begin
      Mutex.unlock t.mutex;
      wait_wake t None;  (* sleep until a submit or drain *)
      scheduler_loop t
    end
  | oldest :: _ ->
    let depth = List.length t.queue in
    let window_left = t.batch_window_s -. (now () -. oldest.submitted_at) in
    let flush = depth >= t.batch_jobs || t.draining || window_left <= 0.0 in
    if flush then begin
      let batch, rest = take t.batch_jobs t.queue in
      t.queue <- rest;
      Condition.broadcast t.not_full;
      Mutex.unlock t.mutex;
      process_batch t batch ~queue_depth:depth;
      scheduler_loop t
    end
    else begin
      Mutex.unlock t.mutex;
      (* Sleep out the window remainder; an early wake (batch filled,
         drain, cancel) re-evaluates the flush condition immediately. *)
      wait_wake t (Some window_left);
      scheduler_loop t
    end

let create ?(queue_capacity = 256) ?(batch_jobs = 16) ?(batch_window_s = 0.01)
    ?(num_threads = 1) ?(tiler_params = Tiler.default_params)
    ?(chain_break = Qac_embed.Embedding.Vote) ?embed_cache
    ?(max_retries = 2) ?trace ~solver ~graph () =
  if queue_capacity < 1 then invalid_arg "Serve.create: queue_capacity must be >= 1";
  if batch_jobs < 1 then invalid_arg "Serve.create: batch_jobs must be >= 1";
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    { mutex = Mutex.create ();
      not_full = Condition.create ();
      wake_r;
      wake_w;
      queue_capacity;
      batch_jobs;
      batch_window_s;
      num_threads;
      tiler_params;
      chain_break;
      embed_cache;
      max_retries;
      trace;
      solver;
      graph;
      latency = Hist.create ();
      queue = [];
      next_index = 0;
      draining = false;
      pipe_closed = false;
      results = Hashtbl.create 64;
      active = Hashtbl.create 64;
      key_of_work = Hashtbl.create 64;
      subscribers = Hashtbl.create 64;
      work_of_ticket = Hashtbl.create 64;
      n_batches = 0;
      n_placed = 0;
      n_deferrals = 0;
      n_retries = 0;
      n_failures = 0;
      n_timeouts = 0;
      n_canceled = 0;
      n_coalesced = 0;
      occupancy_sum = 0.0;
      busy_seconds = 0.0;
      scheduler = None }
  in
  t.scheduler <- Some (Domain.spawn (fun () -> scheduler_loop t));
  t

(* Requires [mutex] held; enqueues a fresh work and wakes the scheduler. *)
let enqueue_locked t job =
  let submitted_at = now () in
  let pending =
    { pjob = job;
      index = t.next_index;
      submitted_at;
      deadline = Option.map (fun ms -> submitted_at +. (ms /. 1000.0)) job.timeout_ms;
      tries = 0 }
  in
  t.next_index <- t.next_index + 1;
  t.queue <- t.queue @ [ pending ];
  let key = coalesce_key job in
  Hashtbl.replace t.active key pending.index;
  Hashtbl.replace t.key_of_work pending.index key;
  Hashtbl.replace t.subscribers pending.index
    [ { ticket = pending.index; sub_id = job.id; joined_at = submitted_at } ];
  Hashtbl.replace t.work_of_ticket pending.index pending.index;
  wake t;
  pending.index

(* Requires [mutex] held.  When an identical computation is already live
   (queued or in flight), attach as a follower: a fresh ticket that shares
   the leader's eventual response without consuming a queue slot or a
   solve.  Followers ride the leader's absolute deadline. *)
let try_attach_locked t job =
  match Hashtbl.find_opt t.active (coalesce_key job) with
  | None -> None
  | Some work ->
    let ticket = t.next_index in
    t.next_index <- ticket + 1;
    let sub = { ticket; sub_id = job.id; joined_at = now () } in
    let subs = Option.value ~default:[] (Hashtbl.find_opt t.subscribers work) in
    Hashtbl.replace t.subscribers work (subs @ [ sub ]);
    Hashtbl.replace t.work_of_ticket ticket work;
    t.n_coalesced <- t.n_coalesced + 1;
    Some ticket

let submit_ticket t job =
  Mutex.lock t.mutex;
  if t.draining then begin
    Mutex.unlock t.mutex;
    invalid_arg "Serve.submit: service is draining"
  end;
  match try_attach_locked t job with
  | Some ticket ->
    Mutex.unlock t.mutex;
    ticket
  | None ->
    while List.length t.queue >= t.queue_capacity && not t.draining do
      Condition.wait t.not_full t.mutex
    done;
    if t.draining then begin
      Mutex.unlock t.mutex;
      invalid_arg "Serve.submit: service is draining"
    end;
    (* An identical job may have arrived while we were blocked. *)
    let ticket =
      match try_attach_locked t job with
      | Some ticket -> ticket
      | None -> enqueue_locked t job
    in
    Mutex.unlock t.mutex;
    ticket

let submit t job = ignore (submit_ticket t job)

let try_submit t job =
  Mutex.lock t.mutex;
  if t.draining then begin
    Mutex.unlock t.mutex;
    invalid_arg "Serve.try_submit: service is draining"
  end;
  let r =
    (* Coalescing needs no queue slot, so a duplicate is admitted even at
       capacity — it adds no work. *)
    match try_attach_locked t job with
    | Some ticket -> Some ticket
    | None ->
      if List.length t.queue >= t.queue_capacity then None
      else Some (enqueue_locked t job)
  in
  Mutex.unlock t.mutex;
  r

let peek t ticket =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.results ticket in
  Mutex.unlock t.mutex;
  r

(* Cancel one *delivery*.  A follower may leave at any point before its
   result is recorded — it owns no work.  The leader's delivery can be
   withdrawn while its work is queued; the work itself is released from
   the queue only when no subscribers remain (coalescing contract: a
   cancellation releases the underlying solve only when no followers
   remain).  An in-flight leader is refused as before: in-flight work is
   never interrupted. *)
let cancel t ticket =
  Mutex.lock t.mutex;
  let canceled =
    if Hashtbl.mem t.results ticket then false
    else
      match Hashtbl.find_opt t.work_of_ticket ticket with
      | None -> false
      | Some work ->
        let in_queue = List.exists (fun p -> p.index = work) t.queue in
        if ticket = work && not in_queue then false
        else begin
          let subs = Option.value ~default:[] (Hashtbl.find_opt t.subscribers work) in
          (match List.find_opt (fun s -> s.ticket = ticket) subs with
           | None -> false
           | Some sub ->
             let at = now () in
             Hist.add t.latency (at -. sub.joined_at);
             Hashtbl.replace t.results ticket
               { id = sub.sub_id;
                 status = Canceled;
                 response = None;
                 batch = -1;
                 wait_seconds = at -. sub.joined_at;
                 solve_seconds = 0.0 };
             t.n_canceled <- t.n_canceled + 1;
             Hashtbl.remove t.work_of_ticket ticket;
             (match List.filter (fun s -> s.ticket <> ticket) subs with
              | [] ->
                (* Last delivery gone: release the work. *)
                Hashtbl.remove t.subscribers work;
                (match Hashtbl.find_opt t.key_of_work work with
                 | Some key ->
                   Hashtbl.remove t.key_of_work work;
                   (match Hashtbl.find_opt t.active key with
                    | Some w when w = work -> Hashtbl.remove t.active key
                    | _ -> ())
                 | None -> ());
                if in_queue then begin
                  t.queue <- List.filter (fun p -> p.index <> work) t.queue;
                  Condition.broadcast t.not_full;
                  wake t
                end
              | rest -> Hashtbl.replace t.subscribers work rest);
             true)
        end
  in
  Mutex.unlock t.mutex;
  canceled

let drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  Condition.broadcast t.not_full;
  wake t;
  let scheduler = t.scheduler in
  t.scheduler <- None;
  Mutex.unlock t.mutex;
  (match scheduler with Some d -> Domain.join d | None -> ());
  Mutex.lock t.mutex;
  if not t.pipe_closed then begin
    t.pipe_closed <- true;
    Unix.close t.wake_r;
    Unix.close t.wake_w
  end;
  let results =
    List.init t.next_index (fun i ->
        match Hashtbl.find_opt t.results i with
        | Some r -> r
        | None ->
          (* Unreachable: every submitted job is recorded before the
             scheduler exits. *)
          { id = Printf.sprintf "#%d" i;
            status = Failed "lost";
            response = None;
            batch = -1;
            wait_seconds = 0.0;
            solve_seconds = 0.0 })
  in
  Mutex.unlock t.mutex;
  results
