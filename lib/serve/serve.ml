(** Batch solver service (see serve.mli for the contract).

    Concurrency layout: [submit]/[drain]/[stats] run on caller domains; one
    scheduler domain owns batching, tiling, solving, and the trace.  All
    shared state (queue, results, counters) is guarded by [mutex];
    [not_full] wakes blocked submitters when the scheduler takes a batch.
    The stdlib [Condition] has no timed wait, so the scheduler poll-sleeps
    (1 ms) while idle — the batching window is a coarse wall-clock bound,
    not a precise timer. *)

module Trace = Qac_diag.Trace
module Tiler = Qac_embed.Tiler
module Cache = Qac_embed.Cache
module Sampler = Qac_anneal.Sampler
open Qac_ising

type job = {
  id : string;
  problem : Problem.t;
  timeout_ms : float option;
}

type status =
  | Done
  | Timed_out
  | Failed of string

type result = {
  id : string;
  status : status;
  response : Sampler.response option;
  batch : int;
  wait_seconds : float;
  solve_seconds : float;
}

type stats = {
  batches : int;
  jobs_done : int;
  placed : int;
  deferrals : int;
  retries : int;
  failures : int;
  timeouts : int;
  mean_occupancy : float;
  jobs_per_second : float;
}

type pending = {
  pjob : job;
  index : int;  (* submission order *)
  submitted_at : float;
  deadline : float option;  (* absolute; fixed at submit *)
  tries : int;  (* embedding-failure retries so far *)
}

type t = {
  mutex : Mutex.t;
  not_full : Condition.t;
  queue_capacity : int;
  batch_jobs : int;
  batch_window_s : float;
  num_threads : int;
  tiler_params : Tiler.params;
  chain_break : Qac_embed.Embedding.chain_break;
  embed_cache : Cache.t option;
  max_retries : int;
  trace : Trace.t option;
  solver : deadline:float option -> Problem.t -> Sampler.response;
  graph : Qac_chimera.Topology.t;
  mutable queue : pending list;  (* head = next to serve *)
  mutable next_index : int;
  mutable draining : bool;
  results : (int, result) Hashtbl.t;
  (* counters, all mutex-guarded *)
  mutable n_batches : int;
  mutable n_placed : int;
  mutable n_deferrals : int;
  mutable n_retries : int;
  mutable n_failures : int;
  mutable n_timeouts : int;
  mutable occupancy_sum : float;
  mutable busy_seconds : float;
  mutable scheduler : unit Domain.t option;
}

let poll_interval = 0.001

let now = Unix.gettimeofday

let expired deadline t =
  match deadline with None -> false | Some d -> t > d

(* Per-(job, retry) tiling seed: retry 0 is exactly [params.seed], so a
   never-failing job tiles identically to a plain [Tiler.tile] call — the
   composition-invariance contract is preserved. *)
let retry_seed base tries = base + (7919 * tries)

let record t (p : pending) ~status ~response ~batch ~batch_start ~solve_seconds =
  Hashtbl.replace t.results p.index
    { id = p.pjob.id;
      status;
      response;
      batch;
      wait_seconds = batch_start -. p.submitted_at;
      solve_seconds }

let rec take n = function
  | [] -> ([], [])
  | rest when n = 0 -> ([], rest)
  | x :: rest ->
    let head, tail = take (n - 1) rest in
    (x :: head, tail)

(* One flush: already-expired jobs fail fast, the rest tile onto the graph;
   placed jobs solve with their own deadlines, deferred jobs requeue at the
   front (first-of-batch always sees an empty floor, so progress is
   guaranteed), embedding failures retry with a fresh seed. *)
let process_batch t batch ~queue_depth =
  let batch_start = now () in
  let batch_no = t.n_batches in
  t.n_batches <- batch_no + 1;
  let stale, live =
    List.partition (fun p -> expired p.deadline batch_start) batch
  in
  Mutex.lock t.mutex;
  List.iter
    (fun p ->
       t.n_timeouts <- t.n_timeouts + 1;
       record t p ~status:Timed_out ~response:None ~batch:(-1) ~batch_start
         ~solve_seconds:0.0)
    stale;
  Mutex.unlock t.mutex;
  if live <> [] then begin
    let jobs = Array.of_list live in
    let problems = Array.map (fun p -> p.pjob.problem) jobs in
    let seeds =
      Array.map (fun p -> retry_seed t.tiler_params.Tiler.seed p.tries) jobs
    in
    Trace.with_span_opt t.trace "batch" (fun () ->
        let count k v = Trace.counter_opt t.trace k v in
        count "jobs" (Array.length jobs);
        count "queue-depth" queue_depth;
        let tiling =
          Tiler.tile ~params:t.tiler_params ?cache:t.embed_cache ~seeds
            ~num_threads:t.num_threads t.graph problems
        in
        let placed, deferred, failed = Tiler.counts tiling in
        let occupancy = Tiler.occupancy tiling in
        count "placed" placed;
        count "deferred" deferred;
        count "failed" failed;
        count "occupancy-pct" (int_of_float (occupancy *. 100.0));
        let deadline i = jobs.(i).deadline in
        let responses =
          Tiler.solve ~num_threads:t.num_threads ~chain_break:t.chain_break
            ~deadline ~solver:t.solver tiling
        in
        let requeue = ref [] in
        Mutex.lock t.mutex;
        t.occupancy_sum <- t.occupancy_sum +. occupancy;
        Array.iteri
          (fun i p ->
             match tiling.Tiler.outcomes.(i) with
             | Tiler.Placed _ ->
               let response = List.assoc i responses in
               let status =
                 if response.Sampler.timed_out then begin
                   t.n_timeouts <- t.n_timeouts + 1;
                   Timed_out
                 end
                 else Done
               in
               t.n_placed <- t.n_placed + 1;
               record t p ~status ~response:(Some response) ~batch:batch_no
                 ~batch_start ~solve_seconds:response.Sampler.elapsed_seconds
             | Tiler.Deferred ->
               t.n_deferrals <- t.n_deferrals + 1;
               requeue := p :: !requeue
             | Tiler.Failed msg ->
               if p.tries < t.max_retries then begin
                 t.n_retries <- t.n_retries + 1;
                 requeue := { p with tries = p.tries + 1 } :: !requeue
               end
               else begin
                 t.n_failures <- t.n_failures + 1;
                 record t p ~status:(Failed msg) ~response:None ~batch:batch_no
                   ~batch_start ~solve_seconds:0.0
               end)
          jobs;
        (* Requeue at the front, preserving relative order. *)
        t.queue <- List.rev !requeue @ t.queue;
        Mutex.unlock t.mutex)
  end;
  Mutex.lock t.mutex;
  t.busy_seconds <- t.busy_seconds +. (now () -. batch_start);
  Mutex.unlock t.mutex

let stats_locked t =
  let jobs_done = Hashtbl.length t.results in
  { batches = t.n_batches;
    jobs_done;
    placed = t.n_placed;
    deferrals = t.n_deferrals;
    retries = t.n_retries;
    failures = t.n_failures;
    timeouts = t.n_timeouts;
    mean_occupancy =
      (if t.n_batches = 0 then 0.0
       else t.occupancy_sum /. float_of_int t.n_batches);
    jobs_per_second =
      (if t.busy_seconds <= 0.0 then 0.0
       else float_of_int jobs_done /. t.busy_seconds) }

let stats t =
  Mutex.lock t.mutex;
  let s = stats_locked t in
  Mutex.unlock t.mutex;
  s

(* Final service-wide summary, written from the scheduler domain just
   before it exits (the trace is single-domain by contract). *)
let write_summary t =
  match t.trace with
  | None -> ()
  | Some trace ->
    let s = stats t in
    Trace.set_summary trace "serve-batches" s.batches;
    Trace.set_summary trace "serve-jobs" s.jobs_done;
    Trace.set_summary trace "serve-placed" s.placed;
    Trace.set_summary trace "serve-deferrals" s.deferrals;
    Trace.set_summary trace "serve-retries" s.retries;
    Trace.set_summary trace "serve-failures" s.failures;
    Trace.set_summary trace "serve-timeouts" s.timeouts;
    Trace.set_summary trace "serve-occupancy-pct"
      (int_of_float (s.mean_occupancy *. 100.0));
    Trace.set_summary trace "serve-jobs-per-sec-x1000"
      (int_of_float (s.jobs_per_second *. 1000.0))

let rec scheduler_loop t =
  Mutex.lock t.mutex;
  match t.queue with
  | [] ->
    if t.draining then begin
      Mutex.unlock t.mutex;
      write_summary t
    end
    else begin
      Mutex.unlock t.mutex;
      Unix.sleepf poll_interval;
      scheduler_loop t
    end
  | oldest :: _ ->
    let depth = List.length t.queue in
    let flush =
      depth >= t.batch_jobs || t.draining
      || now () -. oldest.submitted_at >= t.batch_window_s
    in
    if flush then begin
      let batch, rest = take t.batch_jobs t.queue in
      t.queue <- rest;
      Condition.broadcast t.not_full;
      Mutex.unlock t.mutex;
      process_batch t batch ~queue_depth:depth;
      scheduler_loop t
    end
    else begin
      Mutex.unlock t.mutex;
      Unix.sleepf poll_interval;
      scheduler_loop t
    end

let create ?(queue_capacity = 256) ?(batch_jobs = 16) ?(batch_window_s = 0.01)
    ?(num_threads = 1) ?(tiler_params = Tiler.default_params)
    ?(chain_break = Qac_embed.Embedding.Vote) ?embed_cache
    ?(max_retries = 2) ?trace ~solver ~graph () =
  if queue_capacity < 1 then invalid_arg "Serve.create: queue_capacity must be >= 1";
  if batch_jobs < 1 then invalid_arg "Serve.create: batch_jobs must be >= 1";
  let t =
    { mutex = Mutex.create ();
      not_full = Condition.create ();
      queue_capacity;
      batch_jobs;
      batch_window_s;
      num_threads;
      tiler_params;
      chain_break;
      embed_cache;
      max_retries;
      trace;
      solver;
      graph;
      queue = [];
      next_index = 0;
      draining = false;
      results = Hashtbl.create 64;
      n_batches = 0;
      n_placed = 0;
      n_deferrals = 0;
      n_retries = 0;
      n_failures = 0;
      n_timeouts = 0;
      occupancy_sum = 0.0;
      busy_seconds = 0.0;
      scheduler = None }
  in
  t.scheduler <- Some (Domain.spawn (fun () -> scheduler_loop t));
  t

let submit t job =
  Mutex.lock t.mutex;
  if t.draining then begin
    Mutex.unlock t.mutex;
    invalid_arg "Serve.submit: service is draining"
  end;
  while List.length t.queue >= t.queue_capacity && not t.draining do
    Condition.wait t.not_full t.mutex
  done;
  if t.draining then begin
    Mutex.unlock t.mutex;
    invalid_arg "Serve.submit: service is draining"
  end;
  let submitted_at = now () in
  let pending =
    { pjob = job;
      index = t.next_index;
      submitted_at;
      deadline = Option.map (fun ms -> submitted_at +. (ms /. 1000.0)) job.timeout_ms;
      tries = 0 }
  in
  t.next_index <- t.next_index + 1;
  t.queue <- t.queue @ [ pending ];
  Mutex.unlock t.mutex

let drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  Condition.broadcast t.not_full;
  let scheduler = t.scheduler in
  t.scheduler <- None;
  Mutex.unlock t.mutex;
  (match scheduler with Some d -> Domain.join d | None -> ());
  Mutex.lock t.mutex;
  let results =
    List.init t.next_index (fun i ->
        match Hashtbl.find_opt t.results i with
        | Some r -> r
        | None ->
          (* Unreachable: every submitted job is recorded before the
             scheduler exits. *)
          { id = Printf.sprintf "#%d" i;
            status = Failed "lost";
            response = None;
            batch = -1;
            wait_seconds = 0.0;
            solve_seconds = 0.0 })
  in
  Mutex.unlock t.mutex;
  results
