(** Wire protocol for the serving tier: length-prefixed JSON frames over a
    stream socket (Unix-domain or TCP).

    Every frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON.  One request frame yields exactly one reply frame;
    requests on a connection are served in order, so a client may pipeline.
    Frames above {!max_frame_len} are rejected without being read — a
    length prefix is attacker-controlled input and must not size a buffer
    unchecked.

    Floats are printed with enough digits to round-trip bit-exactly
    ([%.17g]), so a response read back through the socket compares equal to
    the in-process one — the determinism contract survives serialization.

    The JSON codec is hand-written (the toolchain has no JSON package) and
    deliberately small: objects, arrays, strings with the standard escapes,
    numbers, booleans, null.  It accepts any JSON text and emits a
    canonical form (no whitespace, object keys in construction order). *)

exception Protocol_error of string
(** Malformed frame or JSON, unknown request, or oversized length prefix. *)

(** {1 JSON} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_to_string : json -> string
val json_of_string : string -> json
(** Raises {!Protocol_error} on malformed input or trailing bytes. *)

(** {1 Requests and replies} *)

type request =
  | Submit of Serve.job
  | Submit_sat of { id : string; dimacs : string; timeout_ms : float option }
      (** a SAT/MaxSAT job as DIMACS CNF/WCNF text: the server parses and
          compiles it ({!Qac_sat.Compile}) and submits the resulting Ising
          problem like any other job.  Response spins are in the compiled
          problem's variable space — formula variables first, ancillas
          after — so a client holding the same DIMACS text can decode by
          compiling locally.  Malformed or refused input (parse errors,
          weight spread beyond the coefficient budget) answers [Error]
          with the diagnostic, not a dropped connection. *)
  | Poll of int  (** ticket *)
  | Cancel of int  (** ticket *)
  | Stats
  | Metrics
  | Shutdown  (** drain the pool and stop the server *)

type reply =
  | Submitted of { ticket : int; shard : int }
  | Busy of { retry_after_ms : float }
      (** admission control shed the job; retry after the hint *)
  | Pending  (** poll: job still queued or in flight *)
  | Completed of Serve.result  (** poll: finished *)
  | Cancel_ok of bool
  | Stats_json of json  (** see {!stats_to_json} *)
  | Metrics_text of string
  | Shutdown_ok
  | Error of string  (** unknown ticket, parse failure, server-side error *)

val request_to_json : request -> json
val request_of_json : json -> request
val reply_to_json : reply -> json
val reply_of_json : json -> reply

val problem_to_json : Qac_ising.Problem.t -> json
val problem_of_json : json -> Qac_ising.Problem.t

val result_to_json : Serve.result -> json
val result_of_json : json -> Serve.result

val stats_to_json : Shard.shard_stats array -> json
(** One object per shard: the {!Serve.stats} counters, the embed-cache
    counters, and a latency summary (count/sum/p50/p90/p99 — the full
    histogram stays on the {!Metrics} surface). *)

(** {1 Framing} *)

val max_frame_len : int
(** 16 MiB.  Both sides enforce it. *)

val write_frame : Unix.file_descr -> string -> unit
(** Raises {!Protocol_error} if the payload exceeds {!max_frame_len}. *)

val read_frame : Unix.file_descr -> string option
(** [None] on clean EOF at a frame boundary.  Raises {!Protocol_error} on
    an oversized or negative declared length, or EOF mid-frame. *)

(** {1 Client helpers} *)

val connect : Unix.sockaddr -> Unix.file_descr

val call : Unix.file_descr -> request -> reply
(** One request/reply exchange.  Raises {!Protocol_error} if the server
    closes the connection instead of replying. *)
