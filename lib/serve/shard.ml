(** Sharded worker pool (see shard.mli for the contract).

    Each shard is a {!Serve} instance — its own scheduler domain, its own
    bounded queue, its own embedding cache.  This layer only routes,
    translates tickets, and aggregates observability; all scheduling
    invariants live in [Serve].  The pool mutex guards the ticket table and
    the round-robin counter; it is never held across a blocking shard
    submit, so a full shard stalls only its own traffic. *)

module Cache = Qac_embed.Cache
module Store = Qac_embed.Store
module Hist = Qac_diag.Hist

type routing =
  | Affinity
  | Round_robin

type shard = {
  id : int;
  serve : Serve.t;
  cache : Cache.t;
}

type t = {
  shards : shard array;
  routing : routing;
  store : Store.t option;  (* shared artifact store behind every shard's cache *)
  mutex : Mutex.t;  (* tickets + rr counter *)
  tickets : (int, int * int) Hashtbl.t;  (* global ticket -> (shard, local) *)
  mutable next_ticket : int;
  mutable rr : int;
}

type admission =
  | Accepted of { ticket : int; shard : int }
  | Rejected of { retry_after_ms : float }

type shard_stats = {
  shard : int;
  serve : Serve.stats;
  cache : Cache.stats;
  latency : Hist.t;
}

(* --- Affinity routing -------------------------------------------------------- *)

(* FNV-1a over the digest bytes then an optional salt: explicit and stable
   across OCaml versions (Hashtbl.hash is not specified to be), uniform
   enough for load spreading, and cheap — 16 bytes + 8 per route. *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv1a64 (s : string) ~(salt : int) =
  let h = ref fnv_basis in
  let eat byte = h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime in
  String.iter (fun c -> eat (Char.code c)) s;
  for shift = 0 to 7 do
    eat ((salt lsr (8 * shift)) land 0xff)
  done;
  !h

(* Route by the digest alone: fold one unsalted hash over the shard count.
   The earlier scheme scored every shard with a per-shard-salted hash and
   took the argmax (classic HRW) — stable under resizing, but it ranked
   shards by salted entropy, so the placement of a digest was a property
   of the whole score vector rather than of the digest itself.  The fold
   makes placement a pure single-hash function of the digest; the salted
   hash survives only as the tie-break for equal folds, which the modulus
   makes unreachable.  Cost: growing the pool reshuffles placements
   (mod n+1 vs mod n) — acceptable for a pool whose size is fixed at
   create time. *)
let rendezvous ~digest ~num_shards =
  if num_shards < 1 then invalid_arg "Shard.rendezvous: num_shards must be >= 1";
  Int64.to_int (Int64.unsigned_rem (fnv1a64 digest ~salt:0) (Int64.of_int num_shards))

(* --- Pool ------------------------------------------------------------------- *)

let create ?(num_shards = 1) ?(routing = Affinity) ?queue_capacity ?batch_jobs
    ?batch_window_s ?num_threads ?tiler_params ?chain_break
    ?(cache_capacity = 64) ?store ?max_retries ~solver ~graph () =
  if num_shards < 1 then invalid_arg "Shard.create: num_shards must be >= 1";
  let shards =
    Array.init num_shards (fun id ->
        (* One store behind all shards; each shard's LRU copy-promotes out
           of it independently. *)
        let cache = Cache.create ~capacity:cache_capacity ?store () in
        let serve =
          Serve.create ?queue_capacity ?batch_jobs ?batch_window_s ?num_threads
            ?tiler_params ?chain_break ~embed_cache:cache ?max_retries ~solver
            ~graph ()
        in
        { id; serve; cache })
  in
  { shards;
    routing;
    store;
    mutex = Mutex.create ();
    tickets = Hashtbl.create 256;
    next_ticket = 0;
    rr = 0 }

let num_shards t = Array.length t.shards

let route t (problem : Qac_ising.Problem.t) =
  rendezvous ~digest:(Cache.structure_digest problem) ~num_shards:(num_shards t)

(* Pick the shard for a submission; Round_robin advances the counter. *)
let choose t (job : Serve.job) =
  match t.routing with
  | Affinity -> route t job.Serve.problem
  | Round_robin ->
    Mutex.lock t.mutex;
    let s = t.rr mod num_shards t in
    t.rr <- t.rr + 1;
    Mutex.unlock t.mutex;
    s

let register t ~shard ~local =
  Mutex.lock t.mutex;
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  Hashtbl.replace t.tickets ticket (shard, local);
  Mutex.unlock t.mutex;
  ticket

let submit t job =
  let s = choose t job in
  let local = Serve.submit_ticket t.shards.(s).serve job in
  register t ~shard:s ~local

(* Retry-after: how long until the target shard plausibly frees a slot —
   one queue's worth of work at its measured throughput, or a conservative
   per-job constant before any throughput has been observed.  Floored at
   [min_retry_after_ms]: with no real service-time samples yet (or with
   jobs/s skewed high by instantly-recorded cancellations) the naive
   estimate collapses toward zero and tells every rejected client to
   hammer straight back — a first-job thundering herd. *)
let min_retry_after_ms = 10.0

let retry_after_ms (st : Serve.stats) =
  let per_job_ms =
    if st.Serve.jobs_done > 0 && st.Serve.jobs_per_second > 0.0
    then 1000.0 /. st.Serve.jobs_per_second
    else 50.0
  in
  Float.min 60_000.0
    (Float.max min_retry_after_ms
       (per_job_ms *. float_of_int (max 1 st.Serve.queue_depth)))

let try_submit t job =
  let s = choose t job in
  match Serve.try_submit t.shards.(s).serve job with
  | Some local -> Accepted { ticket = register t ~shard:s ~local; shard = s }
  | None ->
    Rejected { retry_after_ms = retry_after_ms (Serve.stats t.shards.(s).serve) }

let lookup t ticket ~who =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.tickets ticket in
  Mutex.unlock t.mutex;
  match r with
  | Some sl -> sl
  | None -> invalid_arg (who ^ ": unknown ticket")

let poll t ticket =
  let shard, local = lookup t ticket ~who:"Shard.poll" in
  Serve.peek t.shards.(shard).serve local

let cancel t ticket =
  let shard, local = lookup t ticket ~who:"Shard.cancel" in
  Serve.cancel t.shards.(shard).serve local

let stats t =
  Array.map
    (fun s ->
       { shard = s.id;
         serve = Serve.stats s.serve;
         cache = Cache.stats s.cache;
         latency = Serve.latency s.serve })
    t.shards

let latency t =
  let merged = Hist.create () in
  Array.iter (fun (s : shard) -> Hist.merge_into merged (Serve.latency s.serve)) t.shards;
  merged

let drain t =
  let per_shard =
    Array.map (fun (s : shard) -> Array.of_list (Serve.drain s.serve)) t.shards
  in
  Mutex.lock t.mutex;
  let out =
    List.init t.next_ticket (fun ticket ->
        let shard, local = Hashtbl.find t.tickets ticket in
        (ticket, per_shard.(shard).(local)))
  in
  Mutex.unlock t.mutex;
  out

(* --- Metrics exposition ------------------------------------------------------ *)

let metrics t =
  let b = Buffer.create 4096 in
  let line name shard fmt =
    Buffer.add_string b (Printf.sprintf "qac_%s{shard=\"%d\"} " name shard);
    Printf.ksprintf
      (fun v ->
         Buffer.add_string b v;
         Buffer.add_char b '\n')
      fmt
  in
  Array.iter
    (fun { shard; serve = sv; cache = c; latency = lat } ->
       line "serve_batches" shard "%d" sv.Serve.batches;
       line "serve_jobs_done" shard "%d" sv.Serve.jobs_done;
       line "serve_placed" shard "%d" sv.Serve.placed;
       line "serve_deferrals" shard "%d" sv.Serve.deferrals;
       line "serve_retries" shard "%d" sv.Serve.retries;
       line "serve_failures" shard "%d" sv.Serve.failures;
       line "serve_timeouts" shard "%d" sv.Serve.timeouts;
       line "serve_canceled" shard "%d" sv.Serve.canceled;
       line "serve_coalesced" shard "%d" sv.Serve.coalesced;
       line "serve_queue_depth" shard "%d" sv.Serve.queue_depth;
       line "serve_occupancy" shard "%g" sv.Serve.mean_occupancy;
       line "serve_jobs_per_second" shard "%g" sv.Serve.jobs_per_second;
       line "embed_cache_hits" shard "%d" c.Cache.hits;
       line "embed_cache_misses" shard "%d" c.Cache.misses;
       line "embed_cache_evictions" shard "%d" c.Cache.evictions;
       line "embed_cache_entries" shard "%d" c.Cache.entries;
       line "embed_cache_store_hits" shard "%d" c.Cache.store_hits;
       (* Cumulative histogram, Prometheus classic shape. *)
       let cumulative = ref 0 in
       List.iter
         (fun (_, upper, count) ->
            cumulative := !cumulative + count;
            let le =
              if upper = infinity then "+Inf" else Printf.sprintf "%g" upper
            in
            Buffer.add_string b
              (Printf.sprintf "qac_serve_latency_seconds_bucket{shard=\"%d\",le=%S} %d\n"
                 shard le !cumulative))
         (Hist.buckets lat);
       if Hist.count lat > 0 then
         Buffer.add_string b
           (Printf.sprintf "qac_serve_latency_seconds_bucket{shard=\"%d\",le=\"+Inf\"} %d\n"
              shard (Hist.count lat));
       line "serve_latency_seconds_sum" shard "%g" (Hist.sum lat);
       line "serve_latency_seconds_count" shard "%d" (Hist.count lat);
       line "serve_latency_p50_seconds" shard "%g" (Hist.p50 lat);
       line "serve_latency_p99_seconds" shard "%g" (Hist.p99 lat))
    (stats t);
  (* The artifact store is pool-wide, so its counters carry no shard label. *)
  (match t.store with
   | None -> ()
   | Some store ->
     let st = Store.stats store in
     let gline name v =
       Buffer.add_string b (Printf.sprintf "qac_store_%s %d\n" name v)
     in
     gline "embeddings" st.Store.embeddings;
     gline "problems" st.Store.problems;
     gline "embed_hits" st.Store.embed_hits;
     gline "embed_misses" st.Store.embed_misses;
     gline "problem_hits" st.Store.problem_hits;
     gline "problem_misses" st.Store.problem_misses;
     gline "writes" st.Store.writes;
     gline "load_failures" st.Store.load_failures);
  Buffer.contents b
