type spin = int

let spin_of_bool b = if b then 1 else -1
let bool_of_spin s = s > 0

type t = {
  num_vars : int;
  offset : float;
  h : float array;
  couplers : ((int * int) * float) array;
  row_start : int array;
  col : int array;
  weight : float array;
}

(* Compressed-sparse-row adjacency: row [i] occupies
   [row_start.(i), row_start.(i+1)) of [col]/[weight].  Each coupler (i, j)
   appears twice, once per endpoint.  Couplers arrive sorted by (i, j), so
   within a row the neighbor indices come out sorted too: for row [i] the
   couplers (j, i) with j < i precede the couplers (i, j) with j > i. *)
let csr_of_couplers num_vars couplers =
  let degree = Array.make num_vars 0 in
  Array.iter
    (fun ((i, j), _) ->
       degree.(i) <- degree.(i) + 1;
       degree.(j) <- degree.(j) + 1)
    couplers;
  let row_start = Array.make (num_vars + 1) 0 in
  for i = 0 to num_vars - 1 do
    row_start.(i + 1) <- row_start.(i) + degree.(i)
  done;
  let nnz = row_start.(num_vars) in
  let col = Array.make nnz 0 in
  let weight = Array.make nnz 0.0 in
  let cursor = Array.sub row_start 0 num_vars in
  Array.iter
    (fun ((i, j), v) ->
       col.(cursor.(i)) <- j;
       weight.(cursor.(i)) <- v;
       cursor.(i) <- cursor.(i) + 1;
       col.(cursor.(j)) <- i;
       weight.(cursor.(j)) <- v;
       cursor.(j) <- cursor.(j) + 1)
    couplers;
  (row_start, col, weight)

let of_parts ~num_vars ~offset ~h ~couplers =
  let row_start, col, weight = csr_of_couplers num_vars couplers in
  { num_vars; offset; h; couplers; row_start; col; weight }

let normalize_couplers pairs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ((i, j), v) ->
       if i = j then invalid_arg "Problem: self-coupler";
       if i < 0 || j < 0 then invalid_arg "Problem: negative variable index";
       let key = if i < j then (i, j) else (j, i) in
       let prev = try Hashtbl.find tbl key with Not_found -> 0.0 in
       Hashtbl.replace tbl key (prev +. v))
    pairs;
  let items = Hashtbl.fold (fun key v acc -> if v = 0.0 then acc else (key, v) :: acc) tbl [] in
  let arr = Array.of_list items in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  arr

let create ~num_vars ~h ~j ?(offset = 0.0) () =
  if Array.length h <> num_vars then invalid_arg "Problem.create: h length mismatch";
  let couplers = normalize_couplers j in
  Array.iter
    (fun ((i, jj), _) ->
       if jj >= num_vars then invalid_arg "Problem.create: coupler index out of range";
       ignore i)
    couplers;
  of_parts ~num_vars ~offset ~h:(Array.copy h) ~couplers

let empty = of_parts ~num_vars:0 ~offset:0.0 ~h:[||] ~couplers:[||]

module Builder = struct
  type problem = t

  type t = {
    mutable n : int;
    mutable off : float;
    lin : (int, float) Hashtbl.t;
    quad : (int * int, float) Hashtbl.t;
  }

  let create ?(num_vars = 0) () =
    { n = num_vars; off = 0.0; lin = Hashtbl.create 64; quad = Hashtbl.create 64 }

  let grow b i = if i >= b.n then b.n <- i + 1

  let add_offset b v = b.off <- b.off +. v

  let add_h b i v =
    if i < 0 then invalid_arg "Builder.add_h: negative index";
    grow b i;
    let prev = try Hashtbl.find b.lin i with Not_found -> 0.0 in
    Hashtbl.replace b.lin i (prev +. v)

  let add_j b i j v =
    if i = j then invalid_arg "Builder.add_j: self-coupler";
    if i < 0 || j < 0 then invalid_arg "Builder.add_j: negative index";
    grow b i;
    grow b j;
    let key = if i < j then (i, j) else (j, i) in
    let prev = try Hashtbl.find b.quad key with Not_found -> 0.0 in
    Hashtbl.replace b.quad key (prev +. v)

  let add_problem b (p : problem) ~var_map =
    if Array.length var_map < p.num_vars then invalid_arg "Builder.add_problem: var_map too short";
    add_offset b p.offset;
    Array.iteri (fun i hv -> if hv <> 0.0 then add_h b var_map.(i) hv) p.h;
    Array.iter (fun ((i, j), v) -> add_j b var_map.(i) var_map.(j) v) p.couplers

  let build b =
    let h = Array.make b.n 0.0 in
    Hashtbl.iter (fun i v -> h.(i) <- h.(i) +. v) b.lin;
    let couplers =
      normalize_couplers (Hashtbl.fold (fun key v acc -> (key, v) :: acc) b.quad [])
    in
    of_parts ~num_vars:b.n ~offset:b.off ~h ~couplers
end

let check_spins p sigma =
  if Array.length sigma <> p.num_vars then invalid_arg "Problem: spin vector length mismatch";
  Array.iter (fun s -> if s <> 1 && s <> -1 then invalid_arg "Problem: spin not +-1") sigma

let energy p sigma =
  check_spins p sigma;
  let e = ref p.offset in
  for i = 0 to p.num_vars - 1 do
    e := !e +. (p.h.(i) *. float_of_int sigma.(i))
  done;
  Array.iter
    (fun ((i, j), v) -> e := !e +. (v *. float_of_int (sigma.(i) * sigma.(j))))
    p.couplers;
  !e

let local_field p sigma i =
  let f = ref p.h.(i) in
  for k = p.row_start.(i) to p.row_start.(i + 1) - 1 do
    f := !f +. (p.weight.(k) *. float_of_int sigma.(p.col.(k)))
  done;
  !f

let energy_delta p sigma i = -2.0 *. float_of_int sigma.(i) *. local_field p sigma i

let degree p i = p.row_start.(i + 1) - p.row_start.(i)

let iter_neighbors p i f =
  for k = p.row_start.(i) to p.row_start.(i + 1) - 1 do
    f p.col.(k) p.weight.(k)
  done

let add a b =
  let builder = Builder.create ~num_vars:(max a.num_vars b.num_vars) () in
  let identity n = Array.init n (fun i -> i) in
  Builder.add_problem builder a ~var_map:(identity a.num_vars);
  Builder.add_problem builder b ~var_map:(identity b.num_vars);
  Builder.build builder

let scale p factor =
  if factor <= 0.0 then invalid_arg "Problem.scale: factor must be positive";
  (* row_start/col are layout-only; share them and scale the values. *)
  { p with
    offset = p.offset *. factor;
    h = Array.map (fun v -> v *. factor) p.h;
    couplers = Array.map (fun (key, v) -> (key, v *. factor)) p.couplers;
    weight = Array.map (fun v -> v *. factor) p.weight }

let relabel p map ~num_vars =
  if Array.length map < p.num_vars then invalid_arg "Problem.relabel: map too short";
  let b = Builder.create ~num_vars () in
  Builder.add_problem b p ~var_map:map;
  let result = Builder.build b in
  if result.num_vars > num_vars then invalid_arg "Problem.relabel: map exceeds num_vars";
  (* Builder only grows to the largest touched index; pad back out. *)
  if result.num_vars = num_vars then result
  else
    let nnz = Array.length result.col in
    { result with
      num_vars;
      h = Array.init num_vars (fun i -> if i < result.num_vars then result.h.(i) else 0.0);
      row_start =
        Array.init (num_vars + 1) (fun i ->
            if i <= result.num_vars then result.row_start.(i) else nnz) }

let num_interactions p = Array.length p.couplers

let num_terms p =
  let lin = Array.fold_left (fun acc v -> if v <> 0.0 then acc + 1 else acc) 0 p.h in
  lin + Array.length p.couplers

let max_abs_h p = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 p.h

(* Fold from the first coupler, not from 0.0: an all-negative problem must
   report a negative max_j (and symmetrically for min_j), or downstream
   scale/schedule estimates silently include a phantom zero coefficient. *)
let fold_j ~combine p =
  match Array.length p.couplers with
  | 0 -> 0.0
  | _ ->
    let (_, first) = p.couplers.(0) in
    Array.fold_left (fun acc (_, v) -> combine acc v) first p.couplers

let max_j p = fold_j ~combine:Float.max p
let min_j p = fold_j ~combine:Float.min p

let get_j p i j =
  if i = j then invalid_arg "Problem.get_j: same variable";
  let key = if i < j then (i, j) else (j, i) in
  let rec binary lo hi =
    if lo >= hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      let mid_key, v = p.couplers.(mid) in
      if mid_key = key then v
      else if mid_key < key then binary (mid + 1) hi
      else binary lo mid
  in
  binary 0 (Array.length p.couplers)

let equal a b =
  a.num_vars = b.num_vars
  && a.offset = b.offset
  && a.h = b.h
  && a.couplers = b.couplers

let pp fmt p =
  Format.fprintf fmt "@[<v>ising problem: %d vars, %d couplers, offset %g@," p.num_vars
    (Array.length p.couplers) p.offset;
  Array.iteri (fun i v -> if v <> 0.0 then Format.fprintf fmt "  h[%d] = %g@," i v) p.h;
  Array.iter (fun ((i, j), v) -> Format.fprintf fmt "  J[%d,%d] = %g@," i j v) p.couplers;
  Format.fprintf fmt "@]"

let to_string p = Format.asprintf "%a" pp p
