(** Hardware coefficient ranges and range scaling (paper, section 2).

    A D-Wave 2000Q accepts h in [-2, 2] and J in [-2, 1]; the J asymmetry
    comes from the rf-SQUID coupler physics.  Multiplying a Hamiltonian by a
    positive constant preserves its argmin, so out-of-range problems are
    brought into range by uniform downscaling. *)

type range = {
  h_min : float;
  h_max : float;
  j_min : float;
  j_max : float;
}

val dwave_2000q : range
(** h in [-2, 2], J in [-2, 1]. *)

val advantage : range
(** h in [-4, 4], J in [-1, 1] — the Pegasus-generation (Advantage) ranges:
    double the field headroom, symmetric but tighter couplers.  {!Cellgen}
    rederives its unit cells under this range for Pegasus targets. *)

val unconstrained : range
(** Infinite ranges, used for the logical (pre-embedding) problem. *)

val fits : range -> Problem.t -> bool

(** [factor range p] is the largest positive multiplier that brings [p] into
    [range] (at most 1.0: problems already in range are left alone). *)
val factor : range -> Problem.t -> float

val apply : range -> Problem.t -> Problem.t
(** [apply range p] rescales [p] to fit [range]; [fits range (apply range p)]
    always holds. *)

val dynamic_range : Problem.t -> float
(** Ratio of the largest to the smallest nonzero coefficient magnitude
    ([1.0] for a problem with no terms).  Invariant under uniform scaling,
    so it measures the analog precision a problem demands of the hardware;
    the SAT frontend refuses MaxSAT weight spreads that push it beyond
    [2^precision_bits]. *)

(** [quantize ~bits p] rounds each coefficient to one of [2^bits] evenly
    spaced levels over its current extent, modelling the limited analog
    precision the paper notes.  Used in noise-sensitivity experiments. *)
val quantize : bits:int -> Problem.t -> Problem.t
