type range = {
  h_min : float;
  h_max : float;
  j_min : float;
  j_max : float;
}

let dwave_2000q = { h_min = -2.0; h_max = 2.0; j_min = -2.0; j_max = 1.0 }
let advantage = { h_min = -4.0; h_max = 4.0; j_min = -1.0; j_max = 1.0 }

let unconstrained =
  { h_min = neg_infinity; h_max = infinity; j_min = neg_infinity; j_max = infinity }

let fits range p =
  let tolerance = 1e-9 in
  let ok_h v = v >= range.h_min -. tolerance && v <= range.h_max +. tolerance in
  let ok_j v = v >= range.j_min -. tolerance && v <= range.j_max +. tolerance in
  Array.for_all ok_h p.Problem.h
  && Array.for_all (fun (_, v) -> ok_j v) p.Problem.couplers

(* The largest s such that s*v stays in [lo, hi] for every coefficient v.
   Since lo < 0 < hi for all supported ranges, each v independently bounds s
   by hi/v (v > 0) or lo/v (v < 0). *)
let factor range p =
  let bound lo hi v =
    if v > 0.0 then hi /. v
    else if v < 0.0 then lo /. v
    else infinity
  in
  let s = ref 1.0 in
  Array.iter (fun v -> s := Float.min !s (bound range.h_min range.h_max v)) p.Problem.h;
  Array.iter
    (fun (_, v) -> s := Float.min !s (bound range.j_min range.j_max v))
    p.Problem.couplers;
  if !s <= 0.0 || Float.is_nan !s then 1.0 else !s

let apply range p =
  let s = factor range p in
  if s >= 1.0 then p else Problem.scale p s

(* Ratio of the largest to the smallest nonzero coefficient magnitude.  A
   uniform downscale ([apply]) preserves this ratio, so it measures how much
   analog precision a problem demands of the hardware regardless of range
   fitting — the MaxSAT weight-spread guard compares it against 2^bits. *)
let dynamic_range p =
  let lo = ref infinity and hi = ref 0.0 in
  let see v =
    let m = Float.abs v in
    if m > 0.0 then begin
      if m < !lo then lo := m;
      if m > !hi then hi := m
    end
  in
  Array.iter see p.Problem.h;
  Array.iter (fun (_, v) -> see v) p.Problem.couplers;
  if !hi = 0.0 then 1.0 else !hi /. !lo

let quantize ~bits p =
  if bits < 1 then invalid_arg "Scale.quantize: bits must be >= 1";
  let levels = float_of_int ((1 lsl bits) - 1) in
  let extent =
    Float.max (Problem.max_abs_h p)
      (Float.max (Float.abs (Problem.max_j p)) (Float.abs (Problem.min_j p)))
  in
  if extent = 0.0 then p
  else begin
    let step = 2.0 *. extent /. levels in
    let round v = Float.round (v /. step) *. step in
    Problem.create ~num_vars:p.Problem.num_vars
      ~h:(Array.map round p.Problem.h)
      ~j:(Array.to_list (Array.map (fun (key, v) -> (key, round v)) p.Problem.couplers))
      ~offset:p.Problem.offset ()
  end
