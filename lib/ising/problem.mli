(** Quadratic pseudo-Boolean functions in Ising ("physics Boolean") form.

    A problem is a Hamiltonian
    {[ H(sigma) = offset + sum_i h.(i) * sigma_i
                         + sum_{i<j} J_{ij} * sigma_i * sigma_j ]}
    over spins [sigma_i] in {-1, +1} (paper, Equation 2).  [False] is -1 and
    [True] is +1 throughout, as in section 2 of the paper. *)

type spin = int
(** Always [+1] or [-1]. *)

val spin_of_bool : bool -> spin
val bool_of_spin : spin -> bool

type t = private {
  num_vars : int;
  offset : float;  (** constant term; irrelevant to argmin, tracked for QUBO round-trips *)
  h : float array;  (** linear coefficients, length [num_vars] *)
  couplers : ((int * int) * float) array;
      (** quadratic coefficients with [i < j], strictly ordered by [(i, j)],
          no duplicates, no zero entries *)
  row_start : int array;
      (** CSR adjacency row table, length [num_vars + 1]: the neighbors of
          variable [i] occupy [col]/[weight] slots
          [row_start.(i) .. row_start.(i+1) - 1], neighbor indices ascending *)
  col : int array;
      (** CSR neighbor indices; every coupler appears twice (once per
          endpoint), so [Array.length col = 2 * Array.length couplers] *)
  weight : float array;  (** CSR coupling values, parallel to [col] *)
}

(** {1 Construction} *)

module Builder : sig
  type problem := t
  type t

  val create : ?num_vars:int -> unit -> t

  (** Coefficients accumulate: adding to the same variable or pair twice sums
      the values, mirroring the additive composition of penalty functions
      (paper section 4.3.5). Variable indices grow the problem as needed. *)

  val add_offset : t -> float -> unit
  val add_h : t -> int -> float -> unit
  val add_j : t -> int -> int -> float -> unit

  (** [add_problem b p ~var_map] sums a whole sub-Hamiltonian into the
      builder, renaming variable [v] of [p] to [var_map.(v)]. *)
  val add_problem : t -> problem -> var_map:int array -> unit

  val build : t -> problem
end

val create : num_vars:int -> h:float array -> j:((int * int) * float) list -> ?offset:float -> unit -> t
(** Convenience one-shot constructor; validates indices and merges duplicate
    couplers. *)

val empty : t

(** {1 Evaluation} *)

val energy : t -> spin array -> float
(** [energy p sigma] evaluates the Hamiltonian.  [sigma] must have length
    [num_vars] and contain only [+1]/[-1]. *)

val energy_delta : t -> spin array -> int -> float
(** [energy_delta p sigma i] is [energy p (flip i sigma) -. energy p sigma],
    computed in O(degree of i). *)

val local_field : t -> spin array -> int -> float
(** [h.(i) + sum_j J_ij * sigma_j]: the effective field seen by spin [i].
    A flat CSR walk over [row_start]/[col]/[weight], O(degree of i). *)

val degree : t -> int -> int
(** Number of couplers touching variable [i]. *)

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
(** [iter_neighbors p i f] calls [f j J_ij] for every coupler touching [i],
    in ascending neighbor order. *)

(** {1 Algebra and transforms} *)

val add : t -> t -> t
(** Pointwise sum of Hamiltonians over the larger variable set. *)

val scale : t -> float -> t
(** Multiply every coefficient (and the offset) by a positive factor;
    preserves argmin. *)

val relabel : t -> int array -> num_vars:int -> t
(** [relabel p map ~num_vars] renames variable [v] to [map.(v)].  Couplers
    mapped onto the same pair are summed; a coupler mapped onto a single
    variable (both ends merged) is an error. *)

val num_interactions : t -> int
val num_terms : t -> int
(** Count of nonzero linear + quadratic terms (the "terms" metric of
    section 6.1). *)

val max_abs_h : t -> float

val max_j : t -> float
val min_j : t -> float
(** Largest/smallest coupler value; [0.0] only for a problem with no
    couplers (an all-negative problem has a negative [max_j]). *)

val get_j : t -> int -> int -> float

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
