(** Multi-problem tiling (see tiler.mli for the contract).

    The load-bearing invariant is {e composition invariance}: every job is
    embedded into a freshly built local fabric ([Family.build_local k]) —
    never into its eventual position on the chip — and only clean tiles
    enter the pool, so any placed block is isomorphic (by translation, with
    identical local numbering) to that local graph.  The embedding, local
    physical problem, and demuxed response of a job therefore depend on
    (job, params) alone, not on what else shares the chip or where the job
    lands.  All fabric geometry lives in {!Qac_chimera.Family}; this module
    only walks the tile grid. *)

module Topology = Qac_chimera.Topology
module Family = Qac_chimera.Family
module Sampler = Qac_anneal.Sampler
module Parallel = Qac_anneal.Parallel
module Rng = Qac_anneal.Rng
open Qac_ising

type params = {
  seed : int;
  attempts_per_size : int;
  max_block : int option;
  slack : float;
  embed_params : Cmr.params option;
  chain_strength : float option;
}

let default_params =
  { seed = 1;
    attempts_per_size = 2;
    max_block = None;
    slack = 3.0;
    embed_params = None;
    chain_strength = None }

type region = {
  origin_row : int;
  origin_col : int;
  block : int;
  qubits : int array;
}

type placed = {
  job : int;
  region : region;
  embedding : Embedding.t;
  physical : Problem.t;
}

type outcome =
  | Placed of placed
  | Deferred
  | Failed of string

type t = {
  graph : Topology.t;
  problems : Problem.t array;
  outcomes : outcome array;
  merged : Problem.t;
}

(* --- Placement geometry ------------------------------------------------------ *)

(* First free footprint in row-major origin order; deterministic in job
   order.  [fp] is the footprint in tiles, which for Pegasus exceeds the
   block size by one (adjacent blocks would otherwise share a boundary
   offset column). *)
let first_fit free ~rows ~cols ~fp =
  let fits r0 c0 =
    let ok = ref true in
    for r = r0 to r0 + fp - 1 do
      for c = c0 to c0 + fp - 1 do
        if not free.(r).(c) then ok := false
      done
    done;
    !ok
  in
  let found = ref None in
  (try
     for r0 = 0 to rows - fp do
       for c0 = 0 to cols - fp do
         if fits r0 c0 then begin
           found := Some (r0, c0);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let mark_used free ~r0 ~c0 ~fp =
  for r = r0 to r0 + fp - 1 do
    for c = c0 to c0 + fp - 1 do
      free.(r).(c) <- false
    done
  done

(* --- The embedding ladder --------------------------------------------------- *)

(* Seeds are a pure function of (base, block, attempt): which attempt
   succeeds — and the embedding it finds — cannot depend on other jobs. *)
let attempt_seed base ~block ~attempt =
  Rng.next_seed (Rng.create (((base * 1_000_003) + block) * 1_000_003 + attempt))

let try_embed ?cache local problem eparams =
  let search () =
    match Cmr.find ~params:eparams local problem with
    | Some e -> Some e
    | None -> None
  in
  match cache with
  | None -> search ()
  | Some c ->
    let key = Cache.key local problem ~params:eparams in
    (match Cache.find c key with
     | Some e -> Some e
     | None ->
       (match search () with
        | Some e ->
          Cache.add c key e;
          Some e
        | None -> None))

(* Find (block, embedding) for one problem — grid-independent.  The ladder
   starts at the smallest block whose capacity covers [slack * num_vars] and
   grows on failure; dense problems get the deterministic clique template as
   a last resort at each size (mirroring [Pipeline.run]'s fallback). *)
let ladder ?cache ~params ~seed ~fam ~kmax ~kclean problem =
  let n = problem.Problem.num_vars in
  if n = 0 then Ok (0, { Embedding.chains = [||] })
  else begin
    let k0 =
      let need = params.slack *. float_of_int n in
      let rec find k =
        if k >= kmax then kmax
        else if float_of_int (fam.Family.block_capacity k) >= need then k
        else find (k + 1)
      in
      find 1
    in
    let rec grow k =
      if k > kmax then
        Error (Printf.sprintf "no embedding found up to block %d" kmax)
      else if k > kclean then
        Error
          (Printf.sprintf
             "problem too large for the topology (needs a %dx%d clean block; largest is %dx%d)"
             k k kclean kclean)
      else begin
        let local = fam.Family.build_local k in
        let base =
          match params.embed_params with
          | Some p -> p
          | None -> Cmr.params_for local
        in
        let rec attempt a =
          if a >= params.attempts_per_size then
            (* Dense interaction graphs defeat the path-based heuristic; the
               clique template is deterministic, so it keeps the invariance. *)
            match Clique.find local problem with
            | Some e -> Ok (k, e)
            | None -> grow (k + 1)
          else
            let eparams =
              { base with
                Cmr.seed = attempt_seed seed ~block:k ~attempt:a;
                num_threads = 1 }
            in
            match try_embed ?cache local problem eparams with
            | Some e -> Ok (k, e)
            | None -> attempt (a + 1)
        in
        attempt 0
      end
    in
    grow k0
  end

(* --- Tiling ----------------------------------------------------------------- *)

let tile ?(params = default_params) ?cache ?seeds ?(num_threads = 1) graph problems =
  let fam = Family.of_topology graph in
  let kclean = Family.max_feasible_block fam in
  let kmax =
    min fam.Family.max_block
      (Option.value params.max_block ~default:fam.Family.max_block)
  in
  let n = Array.length problems in
  let seed_of i = match seeds with Some s -> s.(i) | None -> params.seed in
  (* Phase 1 — the per-job ladders are independent of the grid and of each
     other, so they parallelize freely (the cache is mutex-guarded). *)
  let ladders = Array.make n (Error "not attempted") in
  Parallel.run_tasks ~num_workers:num_threads n (fun i ->
      ladders.(i) <-
        ladder ?cache ~params ~seed:(seed_of i) ~fam ~kmax ~kclean problems.(i));
  (* Phase 2 — sequential first-fit placement in job order. *)
  let free = Array.map Array.copy fam.Family.clean in
  let locals = Hashtbl.create 4 in
  let local_graph k =
    match Hashtbl.find_opt locals k with
    | Some g -> g
    | None ->
      let g = fam.Family.build_local k in
      Hashtbl.add locals k g;
      g
  in
  let outcomes =
    Array.mapi
      (fun i lr ->
         match lr with
         | Error msg -> Failed msg
         | Ok (0, embedding) ->
           Placed
             { job = i;
               region = { origin_row = 0; origin_col = 0; block = 0; qubits = [||] };
               embedding;
               physical = Problem.empty }
         | Ok (block, embedding) ->
           let fp = fam.Family.footprint block in
           (match first_fit free ~rows:fam.Family.rows ~cols:fam.Family.cols ~fp with
            | None -> Deferred
            | Some (r0, c0) ->
              mark_used free ~r0 ~c0 ~fp;
              let physical =
                Embedding.apply ?chain_strength:params.chain_strength
                  (local_graph block) problems.(i) embedding
              in
              Placed
                { job = i;
                  region =
                    { origin_row = r0;
                      origin_col = c0;
                      block;
                      qubits = fam.Family.block_qubits ~r0 ~c0 ~block };
                  embedding;
                  physical }))
      ladders
  in
  let b = Problem.Builder.create ~num_vars:(Topology.num_qubits graph) () in
  Array.iter
    (function
      | Placed p when p.region.block > 0 ->
        Problem.Builder.add_problem b p.physical ~var_map:p.region.qubits
      | Placed _ | Deferred | Failed _ -> ())
    outcomes;
  { graph; problems; outcomes; merged = Problem.Builder.build b }

let occupancy t =
  let used =
    Array.fold_left
      (fun acc o ->
         match o with Placed p -> acc + Array.length p.region.qubits | _ -> acc)
      0 t.outcomes
  in
  float_of_int used /. float_of_int (max 1 (Topology.num_working_qubits t.graph))

let counts t =
  Array.fold_left
    (fun (p, d, f) o ->
       match o with
       | Placed _ -> (p + 1, d, f)
       | Deferred -> (p, d + 1, f)
       | Failed _ -> (p, d, f + 1))
    (0, 0, 0) t.outcomes

(* --- Solving and response plumbing ------------------------------------------ *)

(* Resolve per-sample physical reads to logical reads under a chain-break
   policy.  [Discard] drops reads whose chains disagreed; when every read is
   broken it falls back to the voted reads so the job's response stays
   non-empty.  Each pair carries its occurrence count so the unembed runs
   once per distinct sample, not once per read. *)
let resolve_reads ~policy (p : placed) counted_physicals =
  let resolved =
    List.map
      (fun (ph, n) ->
         (Embedding.unembed ~policy ~problem:p.physical p.embedding ph, n))
      counted_physicals
  in
  let kept =
    match (policy : Embedding.chain_break) with
    | Embedding.Discard ->
      let clean =
        List.filter (fun ((u : Embedding.unembedded), _) -> u.Embedding.broken_chains = 0)
          resolved
      in
      if clean = [] then resolved else clean
    | Embedding.Vote | Embedding.Polish -> resolved
  in
  List.concat_map
    (fun ((u : Embedding.unembedded), n) -> List.init n (fun _ -> u.Embedding.logical))
    kept

(* Physical-sample list -> logical response for one job: fill the local
   full-graph array (unused qubits +1), resolve the chains under [policy]
   (majority vote by default), aggregate.  Energies re-evaluate against the
   job's own logical Hamiltonian. *)
let logical_response ?(policy = Embedding.Vote) problem (p : placed) ~old_of_new
    ~elapsed_seconds ~timed_out samples =
  let counted =
    List.map
      (fun (s : Sampler.sample) ->
         let full = Array.make p.physical.Problem.num_vars 1 in
         Array.iteri (fun k old -> full.(old) <- s.Sampler.spins.(k)) old_of_new;
         (full, s.Sampler.num_occurrences))
      samples
  in
  Sampler.response_of_reads problem ~elapsed_seconds ~timed_out
    (resolve_reads ~policy p counted)

let solve ?(num_threads = 1) ?(chain_break = Embedding.Vote) ?deadline ~solver t =
  let n = Array.length t.problems in
  let results = Array.make n None in
  Parallel.run_tasks ~num_workers:num_threads n (fun i ->
      match t.outcomes.(i) with
      | Deferred | Failed _ -> ()
      | Placed p ->
        let problem = t.problems.(i) in
        let response =
          if p.region.block = 0 then Sampler.response_of_reads problem [ [||] ]
          else begin
            let job_deadline =
              match deadline with None -> None | Some f -> f i
            in
            let compacted, old_of_new = Embedding.compact p.physical in
            let r = solver ~deadline:job_deadline compacted in
            logical_response ~policy:chain_break problem p ~old_of_new
              ~elapsed_seconds:r.Sampler.elapsed_seconds
              ~timed_out:r.Sampler.timed_out r.Sampler.samples
          end
        in
        results.(i) <- Some (i, response));
  Array.to_list results |> List.filter_map Fun.id

(* Expand a response into its per-read configurations, deterministically:
   samples in listed (energy-sorted) order, each repeated by occurrence. *)
let expand_reads (r : Sampler.response) =
  Array.of_list
    (List.concat_map
       (fun (s : Sampler.sample) ->
          List.init s.Sampler.num_occurrences (fun _ -> s.Sampler.spins))
       r.Sampler.samples)

let merge_responses t responses =
  let num_reads =
    match responses with [] -> 0 | (_, r) :: _ -> r.Sampler.num_reads
  in
  let expanded =
    List.map
      (fun (i, r) ->
         if r.Sampler.num_reads <> num_reads then
           invalid_arg "Tiler.merge_responses: responses have unequal num_reads";
         let p =
           match t.outcomes.(i) with
           | Placed p -> p
           | Deferred | Failed _ ->
             invalid_arg "Tiler.merge_responses: job was not placed"
         in
         (p, expand_reads r))
      responses
  in
  let reads =
    List.init num_reads (fun r ->
        let global = Array.make t.merged.Problem.num_vars 1 in
        List.iter
          (fun ((p : placed), reads_of_job) ->
             let local = reads_of_job.(r) in
             Array.iteri (fun l q -> global.(q) <- local.(l)) p.region.qubits)
          expanded;
        global)
  in
  let timed_out = List.exists (fun (_, r) -> r.Sampler.timed_out) responses in
  Sampler.response_of_reads t.merged ~timed_out reads

let demux ?(chain_break = Embedding.Vote) t (response : Sampler.response) =
  let jobs = ref [] in
  Array.iter
    (function
      | Deferred | Failed _ -> ()
      | Placed p ->
        let problem = t.problems.(p.job) in
        let r =
          if p.region.block = 0 then
            Sampler.response_of_reads problem ~timed_out:response.Sampler.timed_out
              (List.concat_map
                 (fun (s : Sampler.sample) ->
                    List.init s.Sampler.num_occurrences (fun _ -> [||]))
                 response.Sampler.samples)
          else
            let counted =
              List.map
                (fun (s : Sampler.sample) ->
                   ( Array.map (fun q -> s.Sampler.spins.(q)) p.region.qubits,
                     s.Sampler.num_occurrences ))
                response.Sampler.samples
            in
            Sampler.response_of_reads problem ~timed_out:response.Sampler.timed_out
              (resolve_reads ~policy:chain_break p counted)
        in
        jobs := (p.job, r) :: !jobs)
    t.outcomes;
  List.rev !jobs
