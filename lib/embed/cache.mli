(** LRU cache of minor embeddings.

    Pakin reports embedding dominating compile time (section 4.4: CMR "can
    take seconds to minutes"); reruns of the same circuit shape — unrolled
    sequential designs re-executed with new pins, bench sweeps, qbsolv-style
    repeated subproblems — re-embed an identical interaction graph every
    time.  The cache keys on exactly what the embedder reads:

    - the {b structure} of the logical problem (variable count + coupler
      pairs; coefficient values do not affect the embedding),
    - the topology identity (name, structural params, broken-qubit set),
    - the {!Cmr.params} that steer the search ([tries], [max_passes],
      [alpha], [seed] — but not [num_threads], which by contract cannot
      change the result).

    All operations are mutex-guarded, so a cache may be shared across
    domains. *)

type t

val create : ?capacity:int -> ?store:Store.t -> unit -> t
(** LRU over [capacity] entries (default 64).  With [?store], the cache is
    backed by a persistent artifact store: {!find} misses fall through to
    the store (a store hit promotes the embedding into the LRU and counts
    as a cache hit), and {!add} writes through.  Several caches — one per
    shard — may share one store; each promotion copies the immutable value
    into the shard's own LRU. *)

val key : Qac_chimera.Topology.t -> Qac_ising.Problem.t -> params:Cmr.params -> Digest.t
(** Content hash of the (topology, problem structure, params) triple. *)

val structure_digest : Qac_ising.Problem.t -> Digest.t
(** The problem-dependent part of {!key} alone (variable count + coupler
    pairs, never coefficient values).  Two problems share a digest exactly
    when they would share every embed-cache entry on any one graph — the
    identity the shard router hashes for cache-affinity routing. *)

val find : t -> Digest.t -> Embedding.t option
(** Hit refreshes recency and bumps the hit counter; miss bumps the miss
    counter.  A backing-store hit counts as a cache hit (plus a
    [store_hits] tick) and promotes the entry. *)

val add : t -> Digest.t -> Embedding.t -> unit
(** Inserts (or refreshes) and evicts the least recently used entry beyond
    capacity; writes through to the backing store when one is attached. *)

val length : t -> int

type stats = {
  hits : int;  (** {!find} calls that returned an embedding *)
  misses : int;  (** {!find} calls that returned [None] *)
  evictions : int;  (** entries dropped by the LRU policy *)
  entries : int;  (** current table size *)
  store_hits : int;  (** the subset of [hits] served by the backing store *)
}

val stats : t -> stats
(** Counters since creation (or {!clear}); [entries] is instantaneous.
    Surfaced per shard by the serving tier's stats endpoint. *)

val clear : t -> unit

val shared : unit -> t
(** The process-wide cache {!Qac_core.Pipeline.run} defaults to. *)
