(** Multi-problem tiling: pack N independent logical Ising problems onto one
    hardware graph by carving it into disjoint regions, one per problem, and
    solving them all in a single (merged) physical Hamiltonian or as a batch
    of per-region subproblems.  All fabric-specific geometry (tile grid,
    clean tiles, block footprints, local graphs) comes from
    {!Qac_chimera.Family}, so any family that module knows — Chimera and
    Pegasus — tiles identically.

    {b Regions are square blocks of clean tiles.}  A tile with a qubit
    broken beyond the family's own fabric trimming is excluded from the pool
    outright, so every placed block induces a subgraph isomorphic — by
    translation, with identical local numbering — to the family's local
    fabric [Family.build_local k] ([Chimera.create ~shore k], or a
    translated [P_{k+1}]).  Each problem is therefore embedded into that
    freshly built local graph, never into its eventual position, which buys
    two properties at once:

    - {b composition invariance}: the embedding, the local physical problem,
      and hence the demuxed response for a job are pure functions of (job,
      params) — bit-identical whether the job is solved alone or packed with
      any other jobs, at any thread count;
    - {b cache locality}: every job with the same interaction structure and
      block size shares one {!Cache} entry (the local topology is the same
      family-distinct ["chimera-kxkxk"] / ["pegasus-k+1"] object for all of
      them, so keys can never collide across fabrics).

    Block sizes climb a deterministic ladder: starting from a capacity
    heuristic, each size gets a fixed number of embedding attempts with
    seeds derived from [(seed, size, attempt)]; an embedding failure grows
    the block, lack of floor space defers the job (the batch server retries
    it at the front of the next, emptier batch), and a problem too large for
    even an empty floor fails outright. *)

type params = {
  seed : int;  (** base seed for the per-(size, attempt) embedding seeds *)
  attempts_per_size : int;  (** embedding retries before growing the block *)
  max_block : int option;  (** block-size cap; [None] = the full grid *)
  slack : float;
      (** capacity headroom: the ladder starts at the smallest block [k]
          with [Family.block_capacity k >= slack * num_vars] *)
  embed_params : Cmr.params option;
      (** base CMR parameters; the ladder overrides [seed] per attempt *)
  chain_strength : float option;  (** [None]: per-problem default *)
}

val default_params : params
(** seed 1, 2 attempts per size, no cap, slack 3.0, default CMR params. *)

type region = {
  origin_row : int;
  origin_col : int;  (** north-west tile of the block, in grid coordinates *)
  block : int;
      (** block size; the placed footprint is [Family.footprint block] tiles
          per side (equal to [block] for Chimera, [block + 1] for Pegasus) *)
  qubits : int array;
      (** global qubit ids in local-index order: [qubits.(l)] is the global
          qubit playing the role of qubit [l] of [Family.build_local block] *)
}

type placed = {
  job : int;  (** index into the problem array passed to {!tile} *)
  region : region;
  embedding : Embedding.t;  (** into the local [C_block], not the region *)
  physical : Qac_ising.Problem.t;  (** local index space, ready to solve *)
}

type outcome =
  | Placed of placed
  | Deferred
      (** embeddable, and a clean block of the required size exists on an
          empty floor, but not in this batch's leftover space *)
  | Failed of string  (** no embedding, or too large for the topology *)

type t = {
  graph : Qac_chimera.Topology.t;
  problems : Qac_ising.Problem.t array;
  outcomes : outcome array;  (** parallel to [problems] *)
  merged : Qac_ising.Problem.t;
      (** all placed jobs' physical problems summed over the global qubit
          index space; disjoint regions guarantee no cross-job couplers *)
}

(** [tile ?params ?cache ?seeds ?num_threads graph problems] carves [graph]
    and embeds every problem.  The per-job ladder runs across [num_threads]
    domains (placement itself is sequential and deterministic: first-fit,
    row-major, in job order).  [cache] memoizes embeddings across jobs and
    batches.  [seeds] overrides [params.seed] per job — the batch server
    uses it to retry an embedding-failed job with a fresh seed; a job's seed
    is part of its identity for composition invariance.  [graph] must belong
    to a known topology family ({!Qac_chimera.Family.of_topology}: Chimera
    or Pegasus); raises [Invalid_argument] otherwise.  Problems with zero
    variables are placed trivially (empty region). *)
val tile :
  ?params:params ->
  ?cache:Cache.t ->
  ?seeds:int array ->
  ?num_threads:int ->
  Qac_chimera.Topology.t ->
  Qac_ising.Problem.t array ->
  t

val occupancy : t -> float
(** Fraction of the graph's working qubits covered by placed regions. *)

val counts : t -> int * int * int
(** [(placed, deferred, failed)]. *)

(** [solve ?num_threads ?chain_break ?deadline ~solver t] solves every
    placed job independently — compact the local physical problem, run
    [solver], expand and resolve the chains back under [chain_break]
    ({!Embedding.chain_break}, default [Vote]; [Discard] drops broken
    reads per job, falling back to voting when all are broken) — and
    returns [(job, response)] pairs in job order, each response in the
    job's own logical variable space.  [solver] receives the per-job
    deadline ([deadline job], absolute [Unix.gettimeofday] instant, [None]
    when absent) and must be pure up to its arguments: jobs run
    concurrently across [num_threads] domains, and composition invariance
    holds only if the solver output depends on the problem alone. *)
val solve :
  ?num_threads:int ->
  ?chain_break:Embedding.chain_break ->
  ?deadline:(int -> float option) ->
  solver:(deadline:float option -> Qac_ising.Problem.t -> Qac_anneal.Sampler.response) ->
  t ->
  (int * Qac_anneal.Sampler.response) list

(** [merge_responses t responses] zips per-job responses {e in the local
    physical index space} into one response over the merged (global)
    problem: read [r] of the result composes read [r] of every job, with
    unused qubits at [+1].  Every response must carry the same [num_reads];
    raises [Invalid_argument] otherwise. *)
val merge_responses :
  t -> (int * Qac_anneal.Sampler.response) list -> Qac_anneal.Sampler.response

(** [demux ?chain_break t response] splits a response over the merged
    problem back into per-job logical responses: each read is restricted to
    the job's region, translated to local indices, and unembedded under
    [chain_break] (default [Vote]).  Inverse of {!merge_responses} up to
    chain repair. *)
val demux :
  ?chain_break:Embedding.chain_break ->
  t ->
  Qac_anneal.Sampler.response ->
  (int * Qac_anneal.Sampler.response) list
