(* Indexed 4-ary min-heap of (float priority, int payload) pairs for
   Dijkstra inside the minor embedder.  Int-specialized: parallel unboxed
   arrays, no tuple boxing.  4-ary because the pop loop dominates Dijkstra:
   sift-down visits half the levels of a binary heap, trading two extra
   (cache-resident) compares per level for half the stores.  [pos]/[stamp]
   track each payload's heap slot so a relaxation becomes a decrease-key (a
   partial sift-up) instead of a duplicate insert — each node is popped at
   most once per Dijkstra, with no stale entries to skip.  [stamp]/[epoch]
   invalidate the position index in O(1) at [clear]; a payload's slot is
   meaningful only when [stamp.(payload) = epoch], and a settled (popped)
   payload keeps its stamp with [pos = -1]. *)

type t = {
  mutable prio : float array;
  mutable payload : int array;
  mutable size : int;
  mutable pos : int array;  (* payload -> slot; -1 once popped this epoch *)
  mutable stamp : int array;
  mutable epoch : int;
}

let create () =
  { prio = Array.make 16 0.0;
    payload = Array.make 16 (-1);
    size = 0;
    pos = [||];
    stamp = [||];
    epoch = 0 }

let is_empty h = h.size = 0

let clear h =
  h.size <- 0;
  h.epoch <- h.epoch + 1

let ensure h capacity =
  if Array.length h.pos < capacity then begin
    (* Fresh stamps are 0 < epoch ([clear] always runs before pushes), so
       every slot starts invalid. *)
    h.pos <- Array.make capacity (-1);
    h.stamp <- Array.make capacity 0
  end

(* Hole-shifting sift-up from slot [i], maintaining the position index. *)
let sift_up h i priority payload =
  let prio = h.prio and pay = h.payload and pos = h.pos in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    if Array.unsafe_get prio parent > priority then begin
      let pp = Array.unsafe_get pay parent in
      Array.unsafe_set prio !i (Array.unsafe_get prio parent);
      Array.unsafe_set pay !i pp;
      Array.unsafe_set pos pp !i;
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set prio !i priority;
  Array.unsafe_set pay !i payload;
  Array.unsafe_set pos payload !i

let push h priority payload =
  if Array.unsafe_get h.stamp payload = h.epoch then
    (* Already queued: decrease-key in place.  (Dijkstra never relaxes a
       settled node, so [pos] is a live slot here.) *)
    sift_up h (Array.unsafe_get h.pos payload) priority payload
  else begin
    if h.size = Array.length h.prio then begin
      let bigger_prio = Array.make (2 * h.size) 0.0 in
      let bigger_payload = Array.make (2 * h.size) (-1) in
      Array.blit h.prio 0 bigger_prio 0 h.size;
      Array.blit h.payload 0 bigger_payload 0 h.size;
      h.prio <- bigger_prio;
      h.payload <- bigger_payload
    end;
    Array.unsafe_set h.stamp payload h.epoch;
    let i = h.size in
    h.size <- h.size + 1;
    sift_up h i priority payload
  end

let min_priority h = h.prio.(0)
let min_payload h = h.payload.(0)

let remove_min h =
  if h.size = 0 then invalid_arg "Heap.remove_min: empty heap";
  h.pos.(h.payload.(0)) <- -1;
  h.size <- h.size - 1;
  if h.size > 0 then begin
    let prio = h.prio and pay = h.payload and pos = h.pos in
    let priority = Array.unsafe_get prio h.size in
    let payload = Array.unsafe_get pay h.size in
    (* Floyd's sift-down: the replacement element comes from the bottom of
       the heap, so it almost always belongs near a leaf — walk the
       min-child path all the way down without comparing against it
       (saving a compare per level), then sift up the short distance. *)
    let i = ref 0 in
    let first = ref 1 in
    while !first < h.size do
      let last =
        let l = !first + 3 in
        if l < h.size then l else h.size - 1
      in
      let smallest = ref !first in
      let smallest_prio = ref (Array.unsafe_get prio !first) in
      for c = !first + 1 to last do
        let cp = Array.unsafe_get prio c in
        if cp < !smallest_prio then begin
          smallest := c;
          smallest_prio := cp
        end
      done;
      let sp = Array.unsafe_get pay !smallest in
      Array.unsafe_set prio !i !smallest_prio;
      Array.unsafe_set pay !i sp;
      Array.unsafe_set pos sp !i;
      i := !smallest;
      first := (4 * !i) + 1
    done;
    sift_up h !i priority payload
  end

let pop h =
  if h.size = 0 then None
  else begin
    let top = (min_priority h, min_payload h) in
    remove_min h;
    Some top
  end
