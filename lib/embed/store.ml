(** Persistent content-addressed artifact store (see store.mli). *)

open Qac_ising

let version = 1
let magic = "QACSTORE"

(* Record header: magic(8) version(4) kind(1) length(8); payload; md5(16). *)
let header_len = 8 + 4 + 1 + 8
let kind_embedding = 1
let kind_problem = 2

(* {1 Codec} *)

let add_u32_le b v = Buffer.add_int32_le b (Int32.of_int v)
let add_u64_le b v = Buffer.add_int64_le b (Int64.of_int v)
let add_f64_le b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let encode_record ~kind payload =
  let b = Buffer.create (header_len + String.length payload + 16) in
  Buffer.add_string b magic;
  add_u32_le b version;
  Buffer.add_uint8 b kind;
  add_u64_le b (String.length payload);
  Buffer.add_string b payload;
  Buffer.add_string b (Digest.string payload);
  Buffer.contents b

(* A decode cursor that turns every out-of-bounds read into [Error] rather
   than an exception: the server must shrug at a corrupt corpus. *)
exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

type cursor = { data : string; mutable pos : int; limit : int }

let take c n what =
  if n < 0 || c.limit - c.pos < n then fail "truncated %s" what;
  let pos = c.pos in
  c.pos <- pos + n;
  pos

let read_u8 c what = Char.code c.data.[take c 1 what]
let read_u32 c what = Int32.to_int (String.get_int32_le c.data (take c 4 what))
let read_i64 c what = String.get_int64_le c.data (take c 8 what)

let read_len c what =
  match Int64.unsigned_to_int (read_i64 c what) with
  | Some n when n <= Sys.max_string_length -> n
  | _ -> fail "implausible %s" what

let read_f64 c what = Int64.float_of_bits (read_i64 c what)

let decode_record ~kind s =
  try
    let c = { data = s; pos = 0; limit = String.length s } in
    let m = take c 8 "magic" in
    if String.sub s m 8 <> magic then fail "bad magic";
    let v = read_u32 c "version" in
    if v <> version then fail "version mismatch: file v%d, supported v%d" v version;
    let k = read_u8 c "kind" in
    if k <> kind then fail "wrong artifact kind: tag %d, expected %d" k kind;
    let n = read_len c "payload length" in
    let payload = String.sub s (take c n "payload") n in
    let sum = String.sub s (take c 16 "checksum") 16 in
    if c.pos <> c.limit then fail "trailing garbage (%d bytes)" (c.limit - c.pos);
    if Digest.string payload <> sum then fail "checksum mismatch";
    Ok payload
  with Malformed m -> Error m

(* Embedding payload: chain count, then each chain as length + qubits. *)

let encode_embedding_payload (e : Embedding.t) =
  let b = Buffer.create 256 in
  add_u64_le b (Array.length e.Embedding.chains);
  Array.iter
    (fun chain ->
       add_u64_le b (Array.length chain);
       Array.iter (fun q -> add_u64_le b q) chain)
    e.Embedding.chains;
  Buffer.contents b

(* [Array.init]'s application order is unspecified, so cursor-advancing
   reads use explicit index-ordered loops instead. *)
let read_array c n what read =
  if n > c.limit - c.pos then fail "implausible %s count" what;
  let out = ref [] in
  for _ = 1 to n do
    out := read c :: !out
  done;
  let a = Array.of_list !out in
  let len = Array.length a in
  Array.init len (fun i -> a.(len - 1 - i))

let decode_embedding_payload payload =
  let c = { data = payload; pos = 0; limit = String.length payload } in
  let num_chains = read_len c "chain count" in
  let chains =
    read_array c num_chains "chain" (fun c ->
        let len = read_len c "chain length" in
        read_array c len "qubit" (fun c -> read_len c "qubit index"))
  in
  if c.pos <> c.limit then fail "trailing garbage in embedding payload";
  { Embedding.chains }

(* Problem payload: num_vars, offset, h array, then couplers as
   (i, j, value) triples.  All floats as raw IEEE-754 bits. *)

let encode_problem_payload (p : Problem.t) =
  let b = Buffer.create 1024 in
  add_u64_le b p.Problem.num_vars;
  add_f64_le b p.Problem.offset;
  Array.iter (fun v -> add_f64_le b v) p.Problem.h;
  add_u64_le b (Array.length p.Problem.couplers);
  Array.iter
    (fun ((i, j), v) ->
       add_u64_le b i;
       add_u64_le b j;
       add_f64_le b v)
    p.Problem.couplers;
  Buffer.contents b

let decode_problem_payload payload =
  let c = { data = payload; pos = 0; limit = String.length payload } in
  let num_vars = read_len c "num_vars" in
  let offset = read_f64 c "offset" in
  let h = read_array c num_vars "linear coefficient" (fun c -> read_f64 c "linear coefficient") in
  let num_couplers = read_len c "coupler count" in
  let j =
    Array.to_list
      (read_array c num_couplers "coupler" (fun c ->
           let i = read_len c "coupler endpoint" in
           let jj = read_len c "coupler endpoint" in
           let v = read_f64 c "coupler value" in
           ((i, jj), v)))
  in
  if c.pos <> c.limit then fail "trailing garbage in problem payload";
  match Problem.create ~num_vars ~h ~j ~offset () with
  | p -> p
  | exception Invalid_argument m -> fail "invalid problem: %s" m

let encode_embedding e = encode_record ~kind:kind_embedding (encode_embedding_payload e)

let decode_embedding s =
  match decode_record ~kind:kind_embedding s with
  | Error _ as e -> e
  | Ok payload ->
    (try Ok (decode_embedding_payload payload) with Malformed m -> Error m)

let encode_problem p = encode_record ~kind:kind_problem (encode_problem_payload p)

let decode_problem s =
  match decode_record ~kind:kind_problem s with
  | Error _ as e -> e
  | Ok payload ->
    (try Ok (decode_problem_payload payload) with Malformed m -> Error m)

(* {1 Directory store} *)

type t = {
  dir : string;
  readonly : bool;
  lock : Mutex.t;
  (* digest -> file path, filled by the startup scan; consulted lazily *)
  emb_files : (Digest.t, string) Hashtbl.t;
  prb_files : (Digest.t, string) Hashtbl.t;
  (* decoded artifacts, shared read-only across shards *)
  emb_mem : (Digest.t, Embedding.t) Hashtbl.t;
  prb_mem : (Digest.t, Problem.t) Hashtbl.t;
  mutable embed_hits : int;
  mutable embed_misses : int;
  mutable problem_hits : int;
  mutable problem_misses : int;
  mutable writes : int;
  mutable load_failures : int;
}

type stats = {
  embeddings : int;
  problems : int;
  embed_hits : int;
  embed_misses : int;
  problem_hits : int;
  problem_misses : int;
  writes : int;
  load_failures : int;
}

let rec mkdir_p d =
  if d <> "" && not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Sys.mkdir d 0o755 with
    | Sys_error _ when Sys.file_exists d -> ()
  end

let emb_prefix = "emb-"
let prb_prefix = "prb-"
let suffix = ".art"

let path_of t ~prefix digest = Filename.concat t.dir (prefix ^ Digest.to_hex digest ^ suffix)

(* [emb-<32 hex>.art] -> digest, or None for anything else in the dir. *)
let digest_of_name ~prefix name =
  let plen = String.length prefix and slen = String.length suffix in
  if String.length name = plen + 32 + slen
     && String.starts_with ~prefix name
     && String.ends_with ~suffix name
  then
    match Digest.from_hex (String.sub name plen 32) with
    | d -> Some d
    | exception Invalid_argument _ -> None
  else None

let open_dir ?(readonly = false) dir =
  mkdir_p dir;
  let t =
    { dir;
      readonly;
      lock = Mutex.create ();
      emb_files = Hashtbl.create 64;
      prb_files = Hashtbl.create 64;
      emb_mem = Hashtbl.create 64;
      prb_mem = Hashtbl.create 64;
      embed_hits = 0;
      embed_misses = 0;
      problem_hits = 0;
      problem_misses = 0;
      writes = 0;
      load_failures = 0 }
  in
  Array.iter
    (fun name ->
       match digest_of_name ~prefix:emb_prefix name with
       | Some d -> Hashtbl.replace t.emb_files d (Filename.concat dir name)
       | None ->
         (match digest_of_name ~prefix:prb_prefix name with
          | Some d -> Hashtbl.replace t.prb_files d (Filename.concat dir name)
          | None -> ()))
    (Sys.readdir dir);
  t

let dir t = t.dir

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error m | Invalid_argument m -> Error m
     | End_of_file -> Error "unexpected end of file"

(* Temp-then-rename so a concurrent reader never sees a half-written
   record.  Content-addressed names make cross-process races benign: both
   writers carry identical bytes. *)
let write_file path data =
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data);
    Sys.rename tmp path;
    true
  with Sys_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    false

(* Shared find/put over the two artifact kinds. *)

let find_generic t ~files ~mem ~decode ~hit ~miss digest =
  with_lock t (fun () ->
      match Hashtbl.find_opt mem digest with
      | Some v ->
        hit ();
        Some v
      | None ->
        (match Hashtbl.find_opt files digest with
         | None ->
           miss ();
           None
         | Some path ->
           let refuse () =
             Hashtbl.remove files digest;
             t.load_failures <- t.load_failures + 1;
             miss ();
             None
           in
           (match read_file path with
            | Error _ -> refuse ()
            | Ok bytes ->
              (match decode bytes with
               | Error _ -> refuse ()
               | Ok v ->
                 Hashtbl.replace mem digest v;
                 hit ();
                 Some v))))

let put_generic t ~files ~mem ~encode ~prefix digest v =
  with_lock t (fun () ->
      if (not t.readonly) && not (Hashtbl.mem mem digest) && not (Hashtbl.mem files digest)
      then begin
        let path = path_of t ~prefix digest in
        if write_file path (encode v) then begin
          Hashtbl.replace files digest path;
          Hashtbl.replace mem digest v;
          t.writes <- t.writes + 1
        end
      end)

let find_embedding t digest =
  find_generic t ~files:t.emb_files ~mem:t.emb_mem ~decode:decode_embedding
    ~hit:(fun () -> t.embed_hits <- t.embed_hits + 1)
    ~miss:(fun () -> t.embed_misses <- t.embed_misses + 1)
    digest

let put_embedding t digest e =
  put_generic t ~files:t.emb_files ~mem:t.emb_mem ~encode:encode_embedding
    ~prefix:emb_prefix digest e

let find_problem t digest =
  find_generic t ~files:t.prb_files ~mem:t.prb_mem ~decode:decode_problem
    ~hit:(fun () -> t.problem_hits <- t.problem_hits + 1)
    ~miss:(fun () -> t.problem_misses <- t.problem_misses + 1)
    digest

let put_problem t digest p =
  put_generic t ~files:t.prb_files ~mem:t.prb_mem ~encode:encode_problem
    ~prefix:prb_prefix digest p

let stats t =
  with_lock t (fun () ->
      let count files mem =
        let n = ref (Hashtbl.length files) in
        Hashtbl.iter (fun d _ -> if not (Hashtbl.mem files d) then incr n) mem;
        !n
      in
      { embeddings = count t.emb_files t.emb_mem;
        problems = count t.prb_files t.prb_mem;
        embed_hits = t.embed_hits;
        embed_misses = t.embed_misses;
        problem_hits = t.problem_hits;
        problem_misses = t.problem_misses;
        writes = t.writes;
        load_failures = t.load_failures })
