(** Randomized minor-embedding heuristic in the style of Cai, Macready and
    Roy (the algorithm behind D-Wave's SAPI embedder the paper uses,
    section 4.4).

    Each logical variable grows a chain of physical qubits.  Chains are
    (re)routed one variable at a time: the candidate root qubit minimizing
    the total weighted shortest-path distance to every embedded neighbor's
    chain is chosen, and the paths themselves become the chain.  Qubit
    weights grow exponentially with how many chains already use them, so
    refinement passes drive overlaps to zero.  The process is randomized;
    repeated calls with different seeds yield different qubit counts
    (section 6.1 reports 369 +/- 26 qubits over 25 runs).

    The hot path walks the topology's CSR adjacency with reusable Dijkstra
    scratch and an indexed decrease-key heap (see [lib/embed/README.md] for
    the contracts).  Restarts ([tries]) can run across OCaml domains; the result
    is a deterministic function of the seed alone — identical at every
    [num_threads]. *)

type params = {
  tries : int;  (** independent restarts with different orderings *)
  max_passes : int;  (** improvement passes per try *)
  alpha : float;  (** overuse penalty base (default 4) *)
  seed : int;
  num_threads : int;
      (** OCaml domains for the restarts; per-try seeds derive from [seed]
          up front and results recombine by (total chain length, try index),
          so any thread count returns the same embedding (default 1) *)
}

val default_params : params

(** [params_for graph] is the default parameter set retuned for [graph]'s
    connectivity: degree-15 fabrics (Pegasus) route with far fewer restarts
    and passes than degree-6 Chimera needs, so they get [tries = 16] and
    [max_passes = 16]; everything else gets {!default_params}.  Pure in the
    graph, so cache keys stay deterministic. *)
val params_for : Qac_chimera.Topology.t -> params

(** [find ?params graph problem] searches for an embedding of [problem]'s
    interaction graph into [graph].  Returns [None] when every try fails. *)
val find :
  ?params:params ->
  Qac_chimera.Chimera.t ->
  Qac_ising.Problem.t ->
  Embedding.t option
