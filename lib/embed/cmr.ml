module Topology = Qac_chimera.Topology
module Rng = Qac_anneal.Rng
module Parallel = Qac_anneal.Parallel
open Qac_ising

type params = {
  tries : int;
  max_passes : int;
  alpha : float;
  seed : int;
  num_threads : int;
}

(* Per-try success on C8-class netlists is ~15-20% (for the old router
   too), so the old default of 8 tries failed a third of the seeds.  The
   CSR/scratch router is >3x faster per try, so 32 restarts cost about what
   8 used to while dropping the per-seed failure rate to well under 1% --
   and the best-of-32 embedding is usually smaller. *)
let default_params =
  { tries = 32; max_passes = 24; alpha = 4.0; seed = 0; num_threads = 1 }

(* Degree-15 fabrics (Pegasus) route in far fewer attempts than degree-6
   Chimera: each Dijkstra has 2.5x the branching, so chains land near their
   neighbors on the first few tries and the extra restarts just burn the
   larger per-try cost.  Halving both knobs keeps Pegasus embedding latency
   comparable to Chimera's while staying deterministic per graph. *)
let params_for graph =
  if Topology.max_degree graph >= 15 then
    { default_params with tries = 16; max_passes = 16 }
  else default_params

exception Route_failed
(* A variable could not reach every embedded neighbor chain (disconnected
   region, or every path blocked); the current try is abandoned. *)

(* Reusable Dijkstra result.  The embedder's Dijkstras explore the whole
   (connected) topology, so validity tracking per entry would cost more than
   it saves: a run just refills [dist] with infinity (one vectorized
   [Array.fill]) and overwrites [parent] as it relaxes.  A qubit is a
   multi-source *source* iff [parent.(q) = -1] after a run — sources are
   seeded that way and every relaxed qubit records a real predecessor, so no
   separate source mask is needed in the hot loop. *)
type scratch = {
  dist : float array;
  parent : int array;
}

let make_scratch n = { dist = Array.make n infinity; parent = Array.make n (-1) }

let scratch_dist s q = s.dist.(q)

type state = {
  graph : Topology.t;
  num_qubits : int;
  (* CSR aliases for the unsafe inner-loop walks. *)
  row_start : int array;
  col : int array;
  working : bool array;
  logical_neighbors : int array array;  (* deduped, sorted *)
  chains : int list array;  (* physical qubits per logical variable *)
  usage : int array;  (* how many chains cover each qubit *)
  cost : float array;
      (* qubit_cost memoized per route: usage is constant from the moment the
         old chain is ripped until the new chain is committed, so the
         alpha^usage * jitter weight of every qubit can be computed once per
         route instead of per Dijkstra pop (libm [pow] dominates otherwise) *)
  heap : Heap.t;  (* reused across every Dijkstra of the try *)
  mutable scratches : scratch array;  (* one per simultaneous Dijkstra *)
  in_chain : bool array;  (* chain membership mask; always cleared after use *)
  visit_stamp : int array;  (* trim DFS visited mask, epoch-invalidated *)
  mutable visit_epoch : int;
  dfs_stack : int array;
  mutable alpha : float;
      (* overuse penalty base; escalated every refinement pass so stable
         overlap deadlocks (cheap shared qubit vs. many detours) eventually
         break *)
}

let make_state graph logical_neighbors alpha =
  let n = Topology.num_qubits graph in
  let heap = Heap.create () in
  Heap.ensure heap n;
  { graph;
    num_qubits = n;
    row_start = graph.Topology.row_start;
    col = graph.Topology.col;
    working = graph.Topology.working;
    logical_neighbors;
    chains = Array.make (Array.length logical_neighbors) [];
    usage = Array.make n 0;
    cost = Array.make n 1.0;
    heap;
    scratches = [||];
    in_chain = Array.make n false;
    visit_stamp = Array.make n 0;
    visit_epoch = 0;
    dfs_stack = Array.make n 0;
    alpha }

let ensure_scratches st k =
  let have = Array.length st.scratches in
  if have < k then
    st.scratches <-
      Array.append st.scratches
        (Array.init (k - have) (fun _ -> make_scratch st.num_qubits))

(* Fill [st.cost] for this route: ~1 (+ jitter) for a free qubit,
   alpha^usage otherwise, with per-route jitter to diversify tie-breaking.
   alpha^u is looked up from a 9-entry table rather than recomputed. *)
let fill_costs st rng =
  let pow = Array.make 9 1.0 in
  for u = 1 to 8 do
    pow.(u) <- pow.(u - 1) *. st.alpha
  done;
  let usage = st.usage and cost = st.cost in
  for q = 0 to st.num_qubits - 1 do
    let jitter = 1.0 +. (0.5 *. Rng.float rng) in
    let u = Array.unsafe_get usage q in
    let u = if u > 8 then 8 else u in
    Array.unsafe_set cost q (Array.unsafe_get pow u *. jitter)
  done

let qubit_cost st q = Array.unsafe_get st.cost q

(* Multi-source Dijkstra from the chain of [u] into scratch [s].
   [scratch_dist s q] is the cheapest cost of the *intermediate* qubits on a
   path from the chain to [q] (excluding both the chain's qubits and [q]
   itself), so a candidate root's own weight can be counted exactly once by
   the caller.  [parent] allows path reconstruction; [source] marks the
   chain's own qubits. *)
let dijkstra st s u =
  let dist = s.dist and parent = s.parent in
  let row_start = st.row_start and col = st.col in
  let heap = st.heap in
  Heap.clear heap;
  Array.fill dist 0 st.num_qubits infinity;
  List.iter
    (fun q ->
       dist.(q) <- 0.0;
       parent.(q) <- -1;
       Heap.push heap 0.0 q)
    st.chains.(u);
  while not (Heap.is_empty heap) do
    let d = Heap.min_priority heap in
    let q = Heap.min_payload heap in
    Heap.remove_min heap;
    (* Decrease-key heap: every pop is settled, never stale.  Stepping past
       [q] costs its weight, unless [q] is a source (already paid for). *)
    let step = if Array.unsafe_get parent q < 0 then 0.0 else qubit_cost st q in
    let nd = d +. step in
    for k = Array.unsafe_get row_start q to Array.unsafe_get row_start (q + 1) - 1 do
      let n = Array.unsafe_get col k in
      (* Sources sit at distance 0, so they can never be relaxed: no
         separate source test is needed. *)
      if nd < Array.unsafe_get dist n -. 1e-12 then begin
        Array.unsafe_set dist n nd;
        Array.unsafe_set parent n q;
        Heap.push heap nd n
      end
    done
  done

(* The embedded logical neighbors of [v], in ascending variable order. *)
let embedded_neighbors st v =
  let ns = st.logical_neighbors.(v) in
  let acc = ref [] in
  for i = Array.length ns - 1 downto 0 do
    let u = ns.(i) in
    if u <> v && st.chains.(u) <> [] then acc := u :: !acc
  done;
  !acc

(* Rebuild the chain of [v] from scratch. *)
let route_chain st rng v =
  (* Rip the old chain, then weight the qubits as the route will see them. *)
  List.iter (fun q -> st.usage.(q) <- st.usage.(q) - 1) st.chains.(v);
  st.chains.(v) <- [];
  fill_costs st rng;
  let embedded = embedded_neighbors st v in
  if embedded = [] then begin
    (* No constraints yet: claim a random least-used working qubit. *)
    let best_usage = ref max_int in
    let count = ref 0 in
    for q = 0 to st.num_qubits - 1 do
      if st.working.(q) then
        if st.usage.(q) < !best_usage then begin
          best_usage := st.usage.(q);
          count := 1
        end
        else if st.usage.(q) = !best_usage then incr count
    done;
    let target = Rng.int rng !count in
    let pick = ref (-1) in
    let seen = ref 0 in
    for q = 0 to st.num_qubits - 1 do
      if !pick < 0 && st.working.(q) && st.usage.(q) = !best_usage then begin
        if !seen = target then pick := q;
        incr seen
      end
    done;
    st.chains.(v) <- [ !pick ];
    st.usage.(!pick) <- st.usage.(!pick) + 1
  end
  else begin
    let k = List.length embedded in
    ensure_scratches st k;
    List.iteri (fun i u -> dijkstra st st.scratches.(i) u) embedded;
    (* Root choice: the chain rooted at [q] costs q's own weight once plus
       the intermediate-qubit cost of each path to a neighbor chain. *)
    let best_root = ref (-1) in
    let best_score = ref infinity in
    for q = 0 to st.num_qubits - 1 do
      if st.working.(q) then begin
        let total = ref 0.0 in
        for i = 0 to k - 1 do
          total := !total +. scratch_dist st.scratches.(i) q
        done;
        if !total < infinity then begin
          let score = !total +. qubit_cost st q in
          if score < !best_score then begin
            best_score := score;
            best_root := q
          end
        end
      end
    done;
    if !best_root < 0 then raise Route_failed;
    (* Walk parents back from the root toward each neighbor chain, adding the
       intermediate qubits (sources themselves stay with their owner). *)
    let members = ref [] in
    let add q =
      if not st.in_chain.(q) then begin
        st.in_chain.(q) <- true;
        members := q :: !members
      end
    in
    add !best_root;
    for i = 0 to k - 1 do
      let s = st.scratches.(i) in
      (* Stop on reaching the neighbor chain: its qubits have parent -1. *)
      let rec walk q =
        if s.parent.(q) >= 0 then begin
          add q;
          walk s.parent.(q)
        end
      in
      walk !best_root
    done;
    st.chains.(v) <- !members;
    List.iter
      (fun q ->
         st.usage.(q) <- st.usage.(q) + 1;
         st.in_chain.(q) <- false)
      !members
  end

(* Chain connectivity restricted to the [in_chain] mask: iterative DFS from
   [first], counting reachable members. *)
let connected_members st first =
  st.visit_epoch <- st.visit_epoch + 1;
  let epoch = st.visit_epoch in
  let stack = st.dfs_stack in
  let row_start = st.row_start and col = st.col in
  stack.(0) <- first;
  st.visit_stamp.(first) <- epoch;
  let top = ref 1 in
  let visited = ref 1 in
  while !top > 0 do
    decr top;
    let q = stack.(!top) in
    for k = row_start.(q) to row_start.(q + 1) - 1 do
      let n = Array.unsafe_get col k in
      if st.in_chain.(n) && st.visit_stamp.(n) <> epoch then begin
        st.visit_stamp.(n) <- epoch;
        incr visited;
        stack.(!top) <- n;
        incr top
      end
    done
  done;
  !visited

let touches_chain st q =
  let found = ref false in
  let lo = st.row_start.(q) and hi = st.row_start.(q + 1) in
  let k = ref lo in
  while (not !found) && !k < hi do
    if st.in_chain.(st.col.(!k)) then found := true;
    incr k
  done;
  !found

(* Remove redundant qubits from a freshly routed chain: a member can go if
   the chain stays connected and every embedded logical neighbor is still
   reachable through some physical edge.  Union-of-shortest-paths routing
   leaves such slack whenever paths to different neighbors diverge. *)
let trim_chain st v =
  let members = ref st.chains.(v) in
  let member_count = ref 0 in
  List.iter
    (fun q ->
       st.in_chain.(q) <- true;
       incr member_count)
    !members;
  let embedded = embedded_neighbors st v in
  let still_valid () =
    match !members with
    | [] -> false
    | _ ->
      let first =
        (* Any member still in the chain anchors the connectivity DFS. *)
        List.find (fun q -> st.in_chain.(q)) !members
      in
      connected_members st first = !member_count
      && List.for_all
           (fun u -> List.exists (fun qu -> touches_chain st qu) st.chains.(u))
           embedded
  in
  let removed_any = ref true in
  while !removed_any do
    removed_any := false;
    let candidates = Array.of_list !members in
    (* Prefer dropping overused qubits, then high-cost ones. *)
    Array.sort
      (fun a b ->
         let c = compare (st.usage.(b) : int) st.usage.(a) in
         if c <> 0 then c else compare (b : int) a)
      candidates;
    Array.iter
      (fun q ->
         if !member_count > 1 then begin
           st.in_chain.(q) <- false;
           decr member_count;
           if still_valid () then begin
             st.usage.(q) <- st.usage.(q) - 1;
             removed_any := true
           end
           else begin
             st.in_chain.(q) <- true;
             incr member_count
           end
         end)
      candidates;
    members := List.filter (fun q -> st.in_chain.(q)) !members
  done;
  List.iter (fun q -> st.in_chain.(q) <- false) !members;
  st.chains.(v) <- !members

let route_and_trim st rng v =
  route_chain st rng v;
  trim_chain st v

let overfull st =
  let count = ref 0 in
  Array.iter (fun u -> if u > 1 then incr count) st.usage;
  !count

let total_chain_length st =
  Array.fold_left (fun acc chain -> acc + List.length chain) 0 st.chains

(* One independent restart.  Entirely a function of [try_seed] (plus the
   graph/problem), so tries can run on any domain in any order: the caller
   recombines per-try results by (total chain length, try index), which
   reproduces the sequential earliest-minimum selection exactly. *)
let run_try ~graph ~logical_neighbors ~(params : params) ~try_seed =
  let n = Array.length logical_neighbors in
  let try_rng = Rng.create try_seed in
  let st = make_state graph logical_neighbors params.alpha in
  let best = ref None in
  let consider () =
    if overfull st = 0 then begin
      let length = total_chain_length st in
      match !best with
      | Some (best_length, _) when best_length <= length -> ()
      | _ ->
        best :=
          Some
            ( length,
              { Embedding.chains =
                  Array.map (fun chain -> Array.of_list (List.sort compare chain)) st.chains
              } )
    end
  in
  let order = Array.init n (fun i -> i) in
  Rng.shuffle try_rng order;
  (try
     (* Initial placement pass. *)
     Array.iter (fun v -> route_and_trim st try_rng v) order;
     (* Refinement passes, escalating the overuse penalty so stable
        overlap deadlocks eventually break. *)
     for pass = 1 to params.max_passes do
       st.alpha <- Float.min 1e6 (params.alpha *. (2.0 ** float_of_int pass));
       Rng.shuffle try_rng order;
       Array.iter (fun v -> route_and_trim st try_rng v) order;
       if overfull st = 0 then begin
         consider ();
         (* Shortening passes: keep rerouting with overlap effectively
            forbidden, keeping the best (shortest) valid embedding. *)
         st.alpha <- 1e6;
         for _shorten = 1 to 3 do
           Rng.shuffle try_rng order;
           Array.iter (fun v -> route_and_trim st try_rng v) order;
           if overfull st = 0 then consider ()
         done;
         raise Exit
       end
     done
   with
   | Exit -> ()
   | Route_failed -> ());
  consider ();
  !best

let find ?(params = default_params) graph (p : Problem.t) =
  let n = p.Problem.num_vars in
  if n = 0 then Some { Embedding.chains = [||] }
  else begin
    let logical_neighbors =
      let tmp = Array.make n [] in
      Array.iter
        (fun ((u, v), _) ->
           tmp.(u) <- v :: tmp.(u);
           tmp.(v) <- u :: tmp.(v))
        p.Problem.couplers;
      (* Dedup so duplicate couplers between one variable pair cannot
         trigger a redundant multi-source Dijkstra per route. *)
      Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) tmp
    in
    let tries = max 0 params.tries in
    (* Seeds derive sequentially from the base seed before any domain runs,
       so the set of tries — and therefore the result — is identical at
       every thread count. *)
    let rng = Rng.create params.seed in
    let try_seeds = Array.init tries (fun _ -> Rng.next_seed rng) in
    let results = Array.make tries None in
    Parallel.run_tasks ~num_workers:params.num_threads tries (fun i ->
        results.(i) <- run_try ~graph ~logical_neighbors ~params ~try_seed:try_seeds.(i));
    (* Deterministic recombination: minimum total chain length, ties broken
       by the lowest try index (strict [<] keeps the earliest minimum). *)
    let best = ref None in
    Array.iter
      (fun r ->
         match (r, !best) with
         | Some (len, _), Some (best_len, _) when len < best_len -> best := r
         | Some _, None -> best := r
         | _ -> ())
      results;
    Option.map snd !best
  end
