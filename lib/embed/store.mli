(** Persistent content-addressed artifact store.

    Every expensive product of the pipeline is a pure function of its
    inputs: a minor embedding depends only on (topology identity, problem
    structure, CMR params) — exactly what {!Cache.key} digests — and a
    compiled Ising problem depends only on (source, compile options).  The
    store snapshots both kinds of artifact to disk as one file per digest,
    so a restarted server starts warm and a pool of shards shares one
    on-disk corpus (the production idiom of dimod's
    [FixedEmbeddingComposite]: embeddings as first-class reusable
    artifacts).

    {b On-disk format.}  Each artifact is a single file
    [<kind>-<hex digest>.art] holding a versioned, length-prefixed binary
    record:

    {v
      magic   8 bytes  "QACSTORE"
      version u32 LE   {!version}
      kind    u8       1 = embedding, 2 = problem
      length  u64 LE   payload byte count
      payload length bytes
      md5     16 bytes Digest.bytes of payload
    v}

    Floats are stored as their IEEE-754 bit patterns
    ([Int64.bits_of_float], little-endian), so coefficients round-trip
    bit-exactly.  Decoding never raises: a truncated, corrupt or
    version-mismatched file yields [Error _] from the codec and [None]
    from the store (counted in [load_failures]), never a crash.

    {b Concurrency.}  All operations are mutex-guarded; one [t] is meant
    to be shared by every shard of a pool.  Decoded artifacts are memoized
    in the store, and each shard's LRU copies the (immutable) value on
    promotion — copy-on-promote, no cross-shard aliasing of cache state.

    Writes go to a temp file in the same directory followed by a rename,
    so concurrent readers never observe a partial record. *)

type t

val version : int
(** Current codec version.  Bumped on any format change; older files are
    refused with [Error], never misread. *)

val open_dir : ?readonly:bool -> string -> t
(** [open_dir dir] creates [dir] (and parents) if needed and indexes the
    artifacts already present; artifact payloads are decoded lazily on
    first access.  With [~readonly:true] (default [false]) the [put_*]
    operations become no-ops — e.g. a replica pointed at a shared corpus
    it must not mutate.  Raises [Sys_error] only if the directory cannot
    be created or listed. *)

val dir : t -> string

val find_embedding : t -> Digest.t -> Embedding.t option
(** Lookup by {!Cache.key} digest.  Decode failure of an on-disk record
    counts as a miss plus a [load_failures] tick and drops the entry. *)

val put_embedding : t -> Digest.t -> Embedding.t -> unit
(** Write-through; no-op when the digest is already stored or the store is
    read-only.  I/O errors are swallowed (the store is an accelerator, not
    a source of truth). *)

val find_problem : t -> Digest.t -> Qac_ising.Problem.t option
(** Lookup a compiled-problem snapshot, keyed by a digest of the compile
    inputs (source text + options); the caller owns the key discipline. *)

val put_problem : t -> Digest.t -> Qac_ising.Problem.t -> unit

type stats = {
  embeddings : int;  (** embedding artifacts known (on disk or memoized) *)
  problems : int;  (** problem artifacts known *)
  embed_hits : int;
  embed_misses : int;
  problem_hits : int;
  problem_misses : int;
  writes : int;  (** artifacts persisted by this process *)
  load_failures : int;  (** on-disk records refused by the codec *)
}

val stats : t -> stats

(** {1 Codec}

    Exposed for tests and tooling: full-record encoders/decoders
    (header + payload + checksum, exactly the file contents). *)

val encode_embedding : Embedding.t -> string
val decode_embedding : string -> (Embedding.t, string) result
val encode_problem : Qac_ising.Problem.t -> string
val decode_problem : string -> (Qac_ising.Problem.t, string) result
