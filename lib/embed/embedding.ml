open Qac_ising
module Chimera = Qac_chimera.Chimera

type t = { chains : int array array }

let num_physical_qubits t =
  Array.fold_left (fun acc chain -> acc + Array.length chain) 0 t.chains

let max_chain_length t =
  Array.fold_left (fun acc chain -> max acc (Array.length chain)) 0 t.chains

let verify graph (p : Problem.t) t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    if Array.length t.chains <> p.Problem.num_vars then
      Error
        (Printf.sprintf "embedding has %d chains for %d variables"
           (Array.length t.chains) p.Problem.num_vars)
    else Ok ()
  in
  (* Nonempty, in-range, working, disjoint. *)
  let seen = Hashtbl.create 64 in
  let* () =
    let rec check v =
      if v >= Array.length t.chains then Ok ()
      else if Array.length t.chains.(v) = 0 then
        Error (Printf.sprintf "variable %d has an empty chain" v)
      else begin
        let bad =
          Array.fold_left
            (fun acc q ->
               match acc with
               | Some _ -> acc
               | None ->
                 if not (Chimera.is_working graph q) then
                   Some (Printf.sprintf "chain of %d uses broken/out-of-range qubit %d" v q)
                 else if Hashtbl.mem seen q then
                   Some (Printf.sprintf "qubit %d appears in two chains" q)
                 else begin
                   Hashtbl.replace seen q v;
                   None
                 end)
            None t.chains.(v)
        in
        match bad with
        | Some msg -> Error msg
        | None -> check (v + 1)
      end
    in
    check 0
  in
  (* Connectivity of each chain. *)
  let* () =
    let rec check v =
      if v >= Array.length t.chains then Ok ()
      else begin
        let chain = t.chains.(v) in
        let members = Hashtbl.create 8 in
        Array.iter (fun q -> Hashtbl.replace members q ()) chain;
        let visited = Hashtbl.create 8 in
        let rec dfs q =
          if not (Hashtbl.mem visited q) then begin
            Hashtbl.replace visited q ();
            List.iter (fun n -> if Hashtbl.mem members n then dfs n) (Chimera.neighbors graph q)
          end
        in
        dfs chain.(0);
        if Hashtbl.length visited <> Array.length chain then
          Error (Printf.sprintf "chain of variable %d is disconnected" v)
        else check (v + 1)
      end
    in
    check 0
  in
  (* Every logical coupler has a physical edge. *)
  let has_edge u v =
    Array.exists
      (fun qu -> Array.exists (fun qv -> Chimera.adjacent graph qu qv) t.chains.(v))
      t.chains.(u)
  in
  Array.fold_left
    (fun acc ((u, v), _) ->
       let* () = acc in
       if has_edge u v then Ok ()
       else Error (Printf.sprintf "no physical edge for logical coupler (%d, %d)" u v))
    (Ok ()) p.Problem.couplers

let default_chain_strength (p : Problem.t) =
  let m =
    Float.max (Problem.max_abs_h p)
      (Float.max (Float.abs (Problem.max_j p)) (Float.abs (Problem.min_j p)))
  in
  if m = 0.0 then 1.0 else 2.0 *. m

let apply ?chain_strength graph (p : Problem.t) t =
  (match verify graph p t with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Embedding.apply: " ^ msg));
  let strength =
    match chain_strength with
    | Some s -> s
    | None -> default_chain_strength p
  in
  let b = Problem.Builder.create ~num_vars:(Chimera.num_qubits graph) () in
  (* Linear terms: split across the chain. *)
  Array.iteri
    (fun v h ->
       if h <> 0.0 then begin
         let chain = t.chains.(v) in
         let share = h /. float_of_int (Array.length chain) in
         Array.iter (fun q -> Problem.Builder.add_h b q share) chain
       end)
    p.Problem.h;
  (* Quadratic terms: split across the available physical edges. *)
  Array.iter
    (fun ((u, v), j) ->
       let edges = ref [] in
       Array.iter
         (fun qu ->
            Array.iter
              (fun qv -> if Chimera.adjacent graph qu qv then edges := (qu, qv) :: !edges)
              t.chains.(v))
         t.chains.(u);
       let share = j /. float_of_int (List.length !edges) in
       List.iter (fun (qu, qv) -> Problem.Builder.add_j b qu qv share) !edges)
    p.Problem.couplers;
  (* Intra-chain ferromagnetic couplers on every internal edge. *)
  Array.iter
    (fun chain ->
       Array.iteri
         (fun i qi ->
            Array.iteri
              (fun k qk ->
                 if i < k && Chimera.adjacent graph qi qk then
                   Problem.Builder.add_j b qi qk (-.strength))
              chain)
         chain)
    t.chains;
  let built = Problem.Builder.build b in
  if built.Problem.num_vars = Chimera.num_qubits graph then built
  else
    Problem.relabel built
      (Array.init built.Problem.num_vars (fun i -> i))
      ~num_vars:(Chimera.num_qubits graph)

type unembedded = {
  logical : Problem.spin array;
  broken_chains : int;
}

(* How broken chains (physical qubits of one logical variable disagreeing)
   resolve to a logical spin:
   - [Vote]: majority across the chain, first qubit breaking ties — the
     original behaviour, and the tie-breaker for every other policy.
   - [Discard]: resolves like [Vote] here; callers drop reads whose
     [broken_chains] is non-zero (and fall back to the voted reads when
     every read would drop, so responses stay non-empty).
   - [Polish]: greedy-descend the physical configuration on the embedded
     problem first — the chain couplers pull broken chains back into
     agreement before the vote, so the vote mostly ratifies repaired
     chains. *)
type chain_break = Vote | Discard | Polish

let chain_break_of_string = function
  | "vote" -> Some Vote
  | "discard" -> Some Discard
  | "polish" -> Some Polish
  | _ -> None

let string_of_chain_break = function
  | Vote -> "vote"
  | Discard -> "discard"
  | Polish -> "polish"

let vote t physical =
  let broken = ref 0 in
  let logical =
    Array.map
      (fun chain ->
         let up = Array.fold_left (fun acc q -> if physical.(q) > 0 then acc + 1 else acc) 0 chain in
         let len = Array.length chain in
         if up <> 0 && up <> len then incr broken;
         if 2 * up > len then 1
         else if 2 * up < len then -1
         else physical.(chain.(0)) (* tie: first qubit decides *))
      t.chains
  in
  { logical; broken_chains = !broken }

let unembed ?(policy = Vote) ?problem t physical =
  match (policy, problem) with
  | (Polish, Some (p : Problem.t)) when Array.length physical = p.Problem.num_vars ->
      let repaired = Qac_anneal.Greedy.local_minimum p physical in
      (* [broken_chains] reports the raw read's breaks (the diagnostic the
         caller wants), while the logical spins come from the repaired
         configuration. *)
      { (vote t repaired) with broken_chains = (vote t physical).broken_chains }
  | _ -> vote t physical

let compact (p : Problem.t) =
  let used = Array.make p.Problem.num_vars false in
  Array.iteri (fun i h -> if h <> 0.0 then used.(i) <- true) p.Problem.h;
  Array.iter
    (fun ((i, j), _) ->
       used.(i) <- true;
       used.(j) <- true)
    p.Problem.couplers;
  let new_of_old = Array.make p.Problem.num_vars (-1) in
  let old_of_new = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun i u ->
       if u then begin
         new_of_old.(i) <- !count;
         old_of_new := i :: !old_of_new;
         incr count
       end)
    used;
  let old_of_new = Array.of_list (List.rev !old_of_new) in
  let map = Array.map (fun m -> if m >= 0 then m else 0) new_of_old in
  (* relabel ignores coefficients of unused variables (they have none). *)
  (Problem.relabel p map ~num_vars:!count, old_of_new)
