module Topology = Qac_chimera.Topology
open Qac_ising

(* An embedding depends only on (a) the structure of the logical interaction
   graph — which variables couple, never the coefficient values —, (b) the
   identity of the hardware graph, and (c) the embedder parameters that
   steer the search.  The key digests exactly those three, so time-unrolled
   reruns, bench sweeps and qbsolv-style repeated subproblems with fresh
   coefficients all hit. *)
let add_structure b (p : Problem.t) =
  let add_int v =
    (* 63-bit ints, little-endian, fixed width: unambiguous concatenation. *)
    Buffer.add_int64_le b (Int64.of_int v)
  in
  add_int p.Problem.num_vars;
  Array.iter
    (fun ((i, j), _) ->
       add_int i;
       add_int j)
    p.Problem.couplers

(* The problem-dependent part of {!key} on its own: what a problem "looks
   like" to the embedder, independent of any particular hardware graph or
   search params.  The shard router hashes this, so same-shaped traffic
   lands on the same warm shard whatever block size the tiler ends up
   choosing. *)
let structure_digest (p : Problem.t) =
  let b = Buffer.create 1024 in
  add_structure b p;
  Digest.string (Buffer.contents b)

let key graph (p : Problem.t) ~(params : Cmr.params) =
  let b = Buffer.create 1024 in
  let add_int v = Buffer.add_int64_le b (Int64.of_int v) in
  Buffer.add_string b graph.Topology.name;
  Buffer.add_char b '\000';
  List.iter
    (fun (name, v) ->
       Buffer.add_string b name;
       Buffer.add_char b '\000';
       add_int v)
    graph.Topology.params;
  add_int (Topology.num_qubits graph);
  Array.iteri (fun q w -> if not w then add_int q) graph.Topology.working;
  add_int (-1);
  add_structure b p;
  add_int params.Cmr.tries;
  add_int params.Cmr.max_passes;
  add_int (Int64.to_int (Int64.bits_of_float params.Cmr.alpha));
  add_int params.Cmr.seed;
  (* num_threads deliberately excluded: the embedder result is independent
     of the thread count by contract. *)
  Digest.string (Buffer.contents b)

type entry = {
  embedding : Embedding.t;
  mutable last_used : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  store_hits : int;
}

type t = {
  capacity : int;
  table : (Digest.t, entry) Hashtbl.t;
  lock : Mutex.t;
  store : Store.t option;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable store_hits : int;
}

let create ?(capacity = 64) ?store () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  { capacity;
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    store;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    store_hits = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let insert_locked t key embedding =
  match Hashtbl.find_opt t.table key with
  | Some entry -> entry.last_used <- t.tick
  | None ->
    Hashtbl.replace t.table key { embedding; last_used = t.tick };
    if Hashtbl.length t.table > t.capacity then begin
      (* Evict the least recently used entry.  Linear in the (small,
         bounded) table; keeps the structure a plain Hashtbl. *)
      let victim = ref None in
      Hashtbl.iter
        (fun k e ->
           match !victim with
           | Some (_, age) when age <= e.last_used -> ()
           | _ -> victim := Some (k, e.last_used))
        t.table;
      match !victim with
      | Some (k, _) ->
        Hashtbl.remove t.table k;
        t.evictions <- t.evictions + 1
      | None -> ()
    end

let find t key =
  with_lock t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.table key with
      | Some entry ->
        entry.last_used <- t.tick;
        t.hits <- t.hits + 1;
        Some entry.embedding
      | None ->
        (* Fall through to the persistent store and promote: a warm corpus
           makes a freshly restarted shard hit on its very first lookup.
           Lock order is cache -> store; the store never calls back. *)
        (match Option.bind t.store (fun s -> Store.find_embedding s key) with
         | Some embedding ->
           insert_locked t key embedding;
           t.hits <- t.hits + 1;
           t.store_hits <- t.store_hits + 1;
           Some embedding
         | None ->
           t.misses <- t.misses + 1;
           None))

let add t key embedding =
  with_lock t (fun () ->
      t.tick <- t.tick + 1;
      insert_locked t key embedding;
      Option.iter (fun s -> Store.put_embedding s key embedding) t.store)

let length t = with_lock t (fun () -> Hashtbl.length t.table)

let stats t =
  with_lock t (fun () ->
      { hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        store_hits = t.store_hits })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.tick <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.store_hits <- 0)

(* Process-wide default, shared by every [Pipeline.run] that is not handed
   an explicit cache. *)
let shared_cache = lazy (create ~capacity:64 ())
let shared () = Lazy.force shared_cache
