(** Minor embeddings: each logical variable occupies a *chain* of physical
    qubits held together by strong ferromagnetic couplers (section 4.4).

    [apply] produces the physical Hamiltonian: linear coefficients are split
    evenly across a chain's qubits, each logical coupler is split across the
    physical edges joining the two chains, and every intra-chain edge gets
    [-chain_strength].  [unembed] maps physical samples back by majority
    vote over each chain. *)

type t = { chains : int array array }
(** [chains.(v)] lists the physical qubits of logical variable [v]. *)

val num_physical_qubits : t -> int
(** Total qubits used (the section 6.1 metric). *)

val max_chain_length : t -> int

(** [verify graph problem embedding] checks the embedding is a valid minor:
    chains are nonempty, disjoint, connected in [graph], within range, and
    every logical coupler has at least one physical edge between its
    endpoint chains. *)
val verify :
  Qac_chimera.Chimera.t -> Qac_ising.Problem.t -> t -> (unit, string) result

val default_chain_strength : Qac_ising.Problem.t -> float
(** Twice the largest coefficient magnitude of the logical problem. *)

(** [apply graph problem embedding] builds the physical Ising problem over
    the graph's qubit index space.  Raises [Invalid_argument] on embeddings
    that fail {!verify}. *)
val apply :
  ?chain_strength:float ->
  Qac_chimera.Chimera.t ->
  Qac_ising.Problem.t ->
  t ->
  Qac_ising.Problem.t

type unembedded = {
  logical : Qac_ising.Problem.spin array;
  broken_chains : int;  (** chains whose qubits disagreed *)
}

(** Chain-break resolution policy.  [Vote] takes the majority spin of each
    chain (first qubit breaks ties).  [Discard] resolves like [Vote] at
    this level; callers drop reads whose [broken_chains] is non-zero,
    falling back to the voted reads when every read would be dropped.
    [Polish] greedy-descends the physical configuration on the embedded
    problem first (the chain couplers pull broken chains back into
    agreement), then votes; it needs the physical problem via [?problem]
    and degrades to [Vote] without it. *)
type chain_break = Vote | Discard | Polish

val chain_break_of_string : string -> chain_break option
(** ["vote"] / ["discard"] / ["polish"]; [None] otherwise (CLI parsing). *)

val string_of_chain_break : chain_break -> string

val unembed :
  ?policy:chain_break ->
  ?problem:Qac_ising.Problem.t ->
  t ->
  Qac_ising.Problem.spin array ->
  unembedded
(** [policy] defaults to [Vote].  [broken_chains] always reports the raw
    read's disagreeing chains, even under [Polish]. *)

(** [compact p] drops variables with no coefficients, returning the smaller
    problem and the map from new to old indices.  Useful before running a
    sampler on a physical problem that occupies a fraction of the chip. *)
val compact : Qac_ising.Problem.t -> Qac_ising.Problem.t * int array
