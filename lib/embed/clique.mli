(** Deterministic native-clique embeddings, per topology family.

    Path-based heuristics like {!Cmr} struggle on dense interaction graphs;
    each family has a deterministic template that sidesteps the search:

    - {b Chimera} (the TRIAD / native clique template of Choi and of
      D-Wave's clique embedder): [K_n] ([n <= shore * m]) with L-shaped
      chains along the grid diagonal — variable [v = b*t + k] occupies the
      partition-0 track [k] of column [b] (rows [0..b]) plus the partition-1
      track [k] of row [b] (columns [b..B-1], where [B = ceil(n/t)] blocks
      are in use).  Any two chains meet in exactly one unit cell, where the
      K_{t,t} intra-cell couplers realize the logical edge.
    - {b Pegasus}: the fabric contains {e native} K4s — a vertical odd pair
      crossed by a horizontal odd pair — so [K_n] for [n <= 4] embeds with
      chains of length {e one} (impossible on bipartite Chimera, where K3
      already needs a chain).  Larger cliques return [None] and fall back to
      {!Cmr}.

    Both templates are total and deterministic: no exceptions, and the
    embedding is a function of the graph alone, preserving the tiler's
    composition invariance. *)

(** [embed graph ~n] returns the native K_n template embedding, or [None]
    when the family has no template for [n], a needed qubit is broken, or
    the graph belongs to no known family. *)
val embed : Qac_chimera.Topology.t -> n:int -> Embedding.t option

(** [find graph problem] embeds [problem]'s interaction graph using the
    clique template sized to its variable count — valid for any problem,
    dense or not, at the cost of clique-sized chains. *)
val find : Qac_chimera.Topology.t -> Qac_ising.Problem.t -> Embedding.t option
