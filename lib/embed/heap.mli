(** Indexed 4-ary min-heap of (float priority, int payload) pairs, for
    Dijkstra inside the minor embedder.  Int-specialized: parallel unboxed
    arrays, no tuple boxing, no sentinel hazards.

    The heap tracks each payload's slot, so {!push} on an already-queued
    payload is a decrease-key (a partial sift-up) rather than a duplicate
    insert: every payload is popped at most once per {!clear} epoch and pop
    loops never see stale entries.  Payloads must be in [0, capacity) as set
    by {!ensure}.  Re-pushing a payload that was already popped this epoch
    with a priority below its settled one is undefined — Dijkstra's
    non-negative weights guarantee it cannot happen.

    Not thread-safe; each Dijkstra state owns its heap. *)

type t

val create : unit -> t

val ensure : t -> int -> unit
(** [ensure h capacity] sizes the position index for payloads in
    [0, capacity).  Call once before use (and after any capacity change);
    existing entries are invalidated by the next {!clear}. *)

val is_empty : t -> bool

val clear : t -> unit
(** Empties and invalidates the position index in O(1), keeping allocated
    capacity for reuse. *)

val push : t -> float -> int -> unit
(** Insert, or decrease-key if the payload is already queued. *)

val min_priority : t -> float
(** Undefined on an empty heap (reads the dummy slot); check {!is_empty}. *)

val min_payload : t -> int

val remove_min : t -> unit
(** Raises [Invalid_argument] on an empty heap. *)

val pop : t -> (float * int) option
(** [min_priority]/[min_payload]/[remove_min] rolled into one allocating
    call; hot loops should use the three-part API instead. *)
