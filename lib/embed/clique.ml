module Chimera = Qac_chimera.Chimera
module Pegasus = Qac_chimera.Pegasus
module Topology = Qac_chimera.Topology

(* --- Chimera: the TRIAD / native clique template ----------------------------- *)

let chimera_embed graph ~n =
  let m = Chimera.size graph in
  let t = Chimera.shore graph in
  if n < 1 || n > t * m then None
  else begin
    let blocks = (n + t - 1) / t in
    let chains =
      Array.init n (fun v ->
          let b = v / t and k = v mod t in
          (* Vertical run: partition-0 track k of column b, rows 0..b. *)
          let vertical =
            List.init (b + 1) (fun row ->
                Chimera.qubit graph { Chimera.row; col = b; partition = 0; index = k })
          in
          (* Horizontal run: partition-1 track k of row b, columns b..blocks-1. *)
          let horizontal =
            List.init (blocks - b) (fun i ->
                Chimera.qubit graph
                  { Chimera.row = b; col = b + i; partition = 1; index = k })
          in
          Array.of_list (vertical @ horizontal))
    in
    let all_working =
      Array.for_all (Array.for_all (fun q -> Chimera.is_working graph q)) chains
    in
    if all_working then Some { Embedding.chains } else None
  end

(* --- Pegasus: native K4, chain length 1 -------------------------------------- *)

(* A vertical odd pair (tracks 2j, 2j+1 at one offset/position) and a
   horizontal odd pair that cross it form a K4 of {e single} qubits: the two
   odd couplers give the intra-pair edges, the four crossings the rest.
   With the canonical shifts paired tracks share their shift, so whenever
   one pair member crosses a segment its partner usually does too — K4s are
   everywhere.  The search scans qubit indices in order and takes the first
   fully working quad, so the result is a deterministic function of the
   graph alone.  Beyond K4 there is no native clique (Pegasus cliques need
   real chains, which is {!Cmr}'s job), so [n > 4] returns [None]. *)
let pegasus_embed graph ~n =
  if n < 1 || n > 4 then None
  else begin
    let found = ref None in
    (try
       for v1 = 0 to Topology.num_qubits graph - 1 do
         if Topology.is_working graph v1 then begin
           let c = Pegasus.coords graph v1 in
           if c.Pegasus.orientation = 0 && c.Pegasus.track mod 2 = 0 then begin
             let v2 = Pegasus.qubit graph { c with Pegasus.track = c.Pegasus.track + 1 } in
             if Topology.is_working graph v2 && Topology.adjacent graph v1 v2 then
               List.iter
                 (fun h1 ->
                    let hc = Pegasus.coords graph h1 in
                    if hc.Pegasus.orientation = 1 && hc.Pegasus.track mod 2 = 0 then begin
                      let h2 =
                        Pegasus.qubit graph { hc with Pegasus.track = hc.Pegasus.track + 1 }
                      in
                      if Topology.is_working graph h2
                         && Topology.adjacent graph h1 h2
                         && Topology.adjacent graph v1 h2
                         && Topology.adjacent graph v2 h1
                         && Topology.adjacent graph v2 h2
                      then begin
                        found := Some [| v1; v2; h1; h2 |];
                        raise Exit
                      end
                    end)
                 (Topology.neighbors graph v1)
           end
         end
       done
     with Exit -> ());
    match !found with
    | None -> None
    | Some quad ->
      Some { Embedding.chains = Array.init n (fun i -> [| quad.(i) |]) }
  end

(* --- Dispatch ---------------------------------------------------------------- *)

let is_pegasus graph =
  let name = graph.Topology.name in
  String.length name >= 8 && String.sub name 0 8 = "pegasus-"

let embed graph ~n =
  match Topology.param graph "shore" with
  | _ -> chimera_embed graph ~n
  | exception Not_found -> if is_pegasus graph then pegasus_embed graph ~n else None

let find graph (p : Qac_ising.Problem.t) = embed graph ~n:p.Qac_ising.Problem.num_vars
