(** Parser for the MiniZinc subset the paper's Listing 8 uses:

    {v
    var 1..4: NSW;
    constraint WA != NT;
    solve satisfy;
    v}

    Supported: integer range variable declarations, binary comparison
    constraints (optionally conjoined with [/\]), [solve satisfy], [%]
    comments, and [output] items (ignored). *)


val parse : string -> Csp.t
(** Builds the CSP; raises [Error] on anything outside the subset. *)
