let error fmt = Qac_diag.Diag.error ~stage:"csp" fmt

type var = int

type relation =
  | Ne
  | Eq
  | Lt
  | Le
  | Gt
  | Ge
  | Custom of string * (int -> int -> bool)

let holds relation a b =
  match relation with
  | Ne -> a <> b
  | Eq -> a = b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Custom (_, f) -> f a b

type binary = {
  relation : relation;
  left : var;
  right : var;
}

type t = {
  mutable names : string list;  (* reverse order *)
  mutable domains : int list list;  (* reverse order *)
  mutable constraints : binary list;
}

let create () = { names = []; domains = []; constraints = [] }

let add_var t ?name ~lo ~hi () =
  if lo > hi then error "empty domain [%d, %d]" lo hi;
  let id = List.length t.names in
  let name = Option.value name ~default:(Printf.sprintf "x%d" id) in
  t.names <- name :: t.names;
  t.domains <- List.init (hi - lo + 1) (fun k -> lo + k) :: t.domains;
  id

let var_name t v =
  match List.nth_opt (List.rev t.names) v with
  | Some n -> n
  | None -> error "unknown variable %d" v

let add_constraint t relation left right =
  if left = right then error "binary constraint needs two distinct variables";
  t.constraints <- { relation; left; right } :: t.constraints

let add_unary t v pred =
  let domains = Array.of_list (List.rev t.domains) in
  if v < 0 || v >= Array.length domains then error "unknown variable %d" v;
  domains.(v) <- List.filter pred domains.(v);
  t.domains <- List.rev (Array.to_list domains)

let num_vars t = List.length t.names
let num_constraints t = List.length t.constraints

type solution = (string * int) list

(* --- Search -------------------------------------------------------------- *)

(* AC-3 style revision over the current domains; [domains] is mutated.
   Returns false when a domain wipes out. *)
let revise_all constraints (domains : int list array) =
  (* Work queue of directed arcs. *)
  let queue = Queue.create () in
  List.iter
    (fun c ->
       Queue.add (c.left, c.right, c.relation) queue;
       Queue.add (c.right, c.left, Custom ("flip", fun a b -> holds c.relation b a)) queue)
    constraints;
  let arcs_for target =
    List.concat_map
      (fun c ->
         if c.right = target then [ (c.left, c.right, c.relation) ]
         else if c.left = target then
           [ (c.right, c.left, Custom ("flip", fun a b -> holds c.relation b a)) ]
         else [])
      constraints
  in
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    let x, y, relation = Queue.pop queue in
    let before = domains.(x) in
    let revised =
      List.filter (fun a -> List.exists (fun b -> holds relation a b) domains.(y)) before
    in
    if List.length revised < List.length before then begin
      domains.(x) <- revised;
      if revised = [] then ok := false
      else List.iter (fun arc -> Queue.add arc queue) (arcs_for x)
    end
  done;
  !ok

let iter_solutions_impl ?seed t yield =
  let n = num_vars t in
  let domains = Array.of_list (List.rev t.domains) in
  let constraints = t.constraints in
  (* Optional value-order shuffling. *)
  (match seed with
   | None -> ()
   | Some s ->
     let st = Random.State.make [| s |] in
     Array.iteri
       (fun i dom ->
          let arr = Array.of_list dom in
          for k = Array.length arr - 1 downto 1 do
            let j = Random.State.int st (k + 1) in
            let tmp = arr.(k) in
            arr.(k) <- arr.(j);
            arr.(j) <- tmp
          done;
          domains.(i) <- Array.to_list arr)
       domains);
  let stop = ref false in
  if revise_all constraints domains then begin
    let names = Array.of_list (List.rev t.names) in
    let rec search domains =
      if !stop then ()
      else begin
        (* MRV: smallest domain among unassigned (size > 1) variables. *)
        let pick = ref (-1) in
        let pick_size = ref max_int in
        Array.iteri
          (fun i dom ->
             let size = List.length dom in
             if size > 1 && size < !pick_size then begin
               pick := i;
               pick_size := size
             end)
          domains;
        if !pick < 0 then begin
          (* Fully assigned: all domains singletons. *)
          let solution =
            Array.to_list (Array.mapi (fun i dom -> (names.(i), List.hd dom)) domains)
          in
          match yield solution with
          | `Continue -> ()
          | `Stop -> stop := true
        end
        else begin
          let v = !pick in
          List.iter
            (fun value ->
               if not !stop then begin
                 let trial = Array.copy domains in
                 trial.(v) <- [ value ];
                 if revise_all constraints trial then search trial
               end)
            domains.(v)
        end
      end
    in
    (* All-singleton check happens inside search; handle n = 0 too. *)
    if n = 0 then ignore (yield []) else search domains
  end

let iter_solutions t yield = iter_solutions_impl t yield

let solve ?seed t =
  let found = ref None in
  iter_solutions_impl ?seed t (fun s ->
      found := Some s;
      `Stop);
  !found

let solve_all ?limit t =
  let acc = ref [] in
  let count = ref 0 in
  iter_solutions_impl t (fun s ->
      acc := s :: !acc;
      incr count;
      match limit with
      | Some l when !count >= l -> `Stop
      | Some _ | None -> `Continue);
  List.rev !acc

let count_solutions ?limit t =
  let count = ref 0 in
  iter_solutions_impl t (fun _ ->
      incr count;
      match limit with
      | Some l when !count >= l -> `Stop
      | Some _ | None -> `Continue);
  !count

let check t solution =
  let names = Array.of_list (List.rev t.names) in
  let domains = Array.of_list (List.rev t.domains) in
  let value v =
    match List.assoc_opt names.(v) solution with
    | Some x -> x
    | None -> error "solution misses variable %s" names.(v)
  in
  List.for_all (fun b -> b)
    (List.mapi (fun i _ -> List.mem (value i) domains.(i)) (Array.to_list names))
  && List.for_all (fun c -> holds c.relation (value c.left) (value c.right)) t.constraints
