let error fmt = Qac_diag.Diag.error ~stage:"minizinc" fmt

let strip_comment line =
  match String.index_opt line '%' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Split the source into ';'-terminated items. *)
let items src =
  String.split_on_char '\n' src
  |> List.map strip_comment
  |> String.concat " "
  |> String.split_on_char ';'
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let parse_var_decl t item vars =
  (* var <lo>..<hi>: NAME *)
  let body = String.trim (String.sub item 3 (String.length item - 3)) in
  match String.index_opt body ':' with
  | None -> error "bad var declaration: %s" item
  | Some colon ->
    let range = String.trim (String.sub body 0 colon) in
    let name = String.trim (String.sub body (colon + 1) (String.length body - colon - 1)) in
    (match Qac_qmasm.Str_split.find_substring range ".." with
     | None -> error "only integer range domains are supported: %s" item
     | Some dots ->
       let lo = String.trim (String.sub range 0 dots) in
       let hi = String.trim (String.sub range (dots + 2) (String.length range - dots - 2)) in
       (match int_of_string_opt lo, int_of_string_opt hi with
        | Some lo, Some hi ->
          let v = Csp.add_var t ~name ~lo ~hi () in
          Hashtbl.replace vars name v
        | _ -> error "bad domain bounds in %s" item))

let relation_table =
  (* Longest operators first so "!=" is not read as "!" "=". *)
  [ ("!=", Csp.Ne); ("<=", Csp.Le); (">=", Csp.Ge); ("==", Csp.Eq); ("<", Csp.Lt);
    (">", Csp.Gt); ("=", Csp.Eq) ]

let parse_atomic_constraint t vars text =
  let text = String.trim text in
  let found =
    List.find_map
      (fun (op, rel) ->
         match Qac_qmasm.Str_split.find_substring text op with
         | Some i -> Some (op, rel, i)
         | None -> None)
      relation_table
  in
  match found with
  | None -> error "unsupported constraint: %s" text
  | Some (op, rel, i) ->
    let left = String.trim (String.sub text 0 i) in
    let right =
      String.trim (String.sub text (i + String.length op) (String.length text - i - String.length op))
    in
    let resolve name =
      match Hashtbl.find_opt vars name with
      | Some v -> `Var v
      | None ->
        (match int_of_string_opt name with
         | Some c -> `Const c
         | None -> error "unknown identifier %s" name)
    in
    (match resolve left, resolve right with
     | `Var a, `Var b -> Csp.add_constraint t rel a b
     | `Var a, `Const c ->
       Csp.add_unary t a (fun x ->
           match rel with
           | Csp.Ne -> x <> c
           | Csp.Eq -> x = c
           | Csp.Lt -> x < c
           | Csp.Le -> x <= c
           | Csp.Gt -> x > c
           | Csp.Ge -> x >= c
           | Csp.Custom _ -> assert false)
     | `Const c, `Var b ->
       Csp.add_unary t b (fun x ->
           match rel with
           | Csp.Ne -> c <> x
           | Csp.Eq -> c = x
           | Csp.Lt -> c < x
           | Csp.Le -> c <= x
           | Csp.Gt -> c > x
           | Csp.Ge -> c >= x
           | Csp.Custom _ -> assert false)
     | `Const _, `Const _ -> error "constraint between constants: %s" text)

let split_conjuncts text =
  (* Split on /\ *)
  let rec go acc rest =
    match Qac_qmasm.Str_split.find_substring rest "/\\" with
    | None -> List.rev (rest :: acc)
    | Some i ->
      let head = String.sub rest 0 i in
      let tail = String.sub rest (i + 2) (String.length rest - i - 2) in
      go (head :: acc) tail
  in
  go [] text

let parse src =
  let t = Csp.create () in
  let vars = Hashtbl.create 16 in
  let saw_solve = ref false in
  List.iter
    (fun item ->
       if starts_with "var " item then parse_var_decl t item vars
       else if starts_with "constraint" item then begin
         let body = String.trim (String.sub item 10 (String.length item - 10)) in
         List.iter (parse_atomic_constraint t vars) (split_conjuncts body)
       end
       else if starts_with "solve" item then saw_solve := true
       else if starts_with "output" item then ()
       else error "unsupported item: %s" item)
    (items src);
  if not !saw_solve then error "missing 'solve satisfy;'";
  t
