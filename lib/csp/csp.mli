(** A small finite-domain constraint solver — the classical baseline of
    section 6.2, standing in for MiniZinc + Chuffed.

    Variables range over integer domains; constraints are binary relations
    (plus unary domain restrictions).  Solving combines AC-3 arc consistency
    with backtracking search (minimum-remaining-values variable order).
    [solve_all]/[iter_solutions] enumerate; [solve] returns the first
    solution.  This is ample for the paper's workload (four-coloring the map
    of Australia: 7 variables, domains of 4, binary ≠ constraints). *)

type t

type var


val create : unit -> t

val add_var : t -> ?name:string -> lo:int -> hi:int -> unit -> var
(** Inclusive integer range domain. *)

val var_name : t -> var -> string

type relation =
  | Ne
  | Eq
  | Lt
  | Le
  | Gt
  | Ge
  | Custom of string * (int -> int -> bool)  (** label, predicate *)

val add_constraint : t -> relation -> var -> var -> unit

val add_unary : t -> var -> (int -> bool) -> unit

val num_vars : t -> int
val num_constraints : t -> int

type solution = (string * int) list

val solve : ?seed:int -> t -> solution option
(** First solution found, or [None] when unsatisfiable.  [seed] randomizes
    value ordering (the annealer samples solutions; giving the classical
    baseline the same ability keeps section 6.2's comparison fair). *)

val solve_all : ?limit:int -> t -> solution list

val iter_solutions : t -> (solution -> [ `Continue | `Stop ]) -> unit

val count_solutions : ?limit:int -> t -> int

val check : t -> solution -> bool
(** Does an assignment satisfy every constraint (and cover every variable)? *)
