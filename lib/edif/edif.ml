module S = Qac_sexp.Sexp
module N = Qac_netlist.Netlist

let error fmt = Qac_diag.Diag.error ~stage:"edif" fmt

(* --- Naming ------------------------------------------------------------- *)

let is_plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* EDIF names must be simple identifiers; anything else goes through
   (rename <sanitized> "<original>"). *)
let name_sexp original =
  if is_plain_ident original then S.atom original
  else begin
    let buf = Buffer.create (String.length original + 4) in
    if original = "" || not (match original.[0] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
    then Buffer.add_string buf "n_";
    String.iter
      (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char buf c
         | _ -> Buffer.add_char buf '_')
      original;
    S.list [ S.atom "rename"; S.atom (Buffer.contents buf); S.atom original ]
  end

let original_of_name_sexp = function
  | S.Atom s -> s
  | S.List [ S.Atom "rename"; _; S.Atom original ] -> original
  | s -> error "malformed EDIF name: %s" (S.to_string_compact s)

(* Port-bit naming: bit [i] of multi-bit port [p] is "p[i]"; single-bit
   ports keep their name. *)
let port_bit_name name width i = if width = 1 then name else Printf.sprintf "%s[%d]" name i

let parse_port_bit name =
  match String.index_opt name '[' with
  | None -> (name, None)
  | Some open_idx ->
    if String.length name = 0 || name.[String.length name - 1] <> ']' then (name, None)
    else begin
      let base = String.sub name 0 open_idx in
      let digits = String.sub name (open_idx + 1) (String.length name - open_idx - 2) in
      match int_of_string_opt digits with
      | Some bit -> (base, Some bit)
      | None -> (name, None)
    end

(* --- Cell library ------------------------------------------------------- *)

let cell_ports kind =
  match kind with
  | N.Not -> ([ "A" ], "Y")
  | N.And | N.Or | N.Nand | N.Nor | N.Xor | N.Xnor -> ([ "A"; "B" ], "Y")
  | N.Mux -> ([ "A"; "B"; "S" ], "Y")
  | N.Aoi3 | N.Oai3 -> ([ "A"; "B"; "C" ], "Y")
  | N.Aoi4 | N.Oai4 -> ([ "A"; "B"; "C"; "D" ], "Y")
  | N.Dff_p | N.Dff_n -> ([ "D" ], "Q")


let cell_decl ~name ~inputs ~output =
  S.list
    [ S.atom "cell";
      S.atom name;
      S.list [ S.atom "cellType"; S.atom "GENERIC" ];
      S.list
        ([ S.atom "view";
           S.atom "netlist";
           S.list [ S.atom "viewType"; S.atom "NETLIST" ];
           S.list
             (S.atom "interface"
              :: (List.map
                    (fun p ->
                       S.list
                         [ S.atom "port";
                           S.atom p;
                           S.list [ S.atom "direction"; S.atom "INPUT" ] ])
                    inputs
                  @ [ S.list
                        [ S.atom "port";
                          S.atom output;
                          S.list [ S.atom "direction"; S.atom "OUTPUT" ] ] ])) ]) ]

(* --- Emission ------------------------------------------------------------ *)

let instance_name idx = Printf.sprintf "id%05d" (idx + 1)

let to_sexp (t : N.t) =
  let used_kinds = List.map fst (N.cells_by_kind t) in
  let fanout = N.fanout_counts t in
  let uses_const value =
    let check = function
      | N.Zero -> value = false
      | N.One -> value = true
      | N.Net _ -> false
    in
    Array.exists (fun (c : N.cell) -> Array.exists check c.N.inputs) t.N.cells
    || List.exists (fun (_, signals) -> Array.exists check signals) t.N.outputs
  in
  let uses_gnd = uses_const false and uses_vcc = uses_const true in
  (* Library of used cells. *)
  let cells_library =
    let decls =
      List.map
        (fun kind ->
           let inputs, output = cell_ports kind in
           cell_decl ~name:(N.kind_name kind) ~inputs ~output)
        used_kinds
      @ (if uses_gnd then [ cell_decl ~name:"GND" ~inputs:[] ~output:"Y" ] else [])
      @ if uses_vcc then [ cell_decl ~name:"VCC" ~inputs:[] ~output:"Y" ] else []
    in
    S.list
      (S.atom "library" :: S.atom "cells"
       :: S.list [ S.atom "edifLevel"; S.atom "0" ]
       :: S.list [ S.atom "technology"; S.list [ S.atom "numberDefinition" ] ]
       :: decls)
  in
  (* Interface: one scalar port per bit. *)
  let interface =
    let ports =
      List.concat_map
        (fun (name, nets) ->
           let width = Array.length nets in
           List.init width (fun i ->
               S.list
                 [ S.atom "port";
                   name_sexp (port_bit_name name width i);
                   S.list [ S.atom "direction"; S.atom "INPUT" ] ]))
        t.N.inputs
      @ List.concat_map
          (fun (name, signals) ->
             let width = Array.length signals in
             List.init width (fun i ->
                 S.list
                   [ S.atom "port";
                     name_sexp (port_bit_name name width i);
                     S.list [ S.atom "direction"; S.atom "OUTPUT" ] ]))
          t.N.outputs
    in
    S.list (S.atom "interface" :: ports)
  in
  (* Instances. *)
  let instances =
    List.mapi
      (fun idx (c : N.cell) ->
         S.list
           [ S.atom "instance";
             S.atom (instance_name idx);
             S.list
               [ S.atom "viewRef";
                 S.atom "netlist";
                 S.list
                   [ S.atom "cellRef";
                     S.atom (N.kind_name c.N.kind);
                     S.list [ S.atom "libraryRef"; S.atom "cells" ] ] ] ])
      (Array.to_list t.N.cells)
  in
  let gnd_instance = "const_gnd" and vcc_instance = "const_vcc" in
  let const_instances =
    (if uses_gnd then
       [ S.list
           [ S.atom "instance";
             S.atom gnd_instance;
             S.list
               [ S.atom "viewRef";
                 S.atom "netlist";
                 S.list
                   [ S.atom "cellRef";
                     S.atom "GND";
                     S.list [ S.atom "libraryRef"; S.atom "cells" ] ] ] ] ]
     else [])
    @
    if uses_vcc then
      [ S.list
          [ S.atom "instance";
            S.atom vcc_instance;
            S.list
              [ S.atom "viewRef";
                S.atom "netlist";
                S.list
                  [ S.atom "cellRef";
                    S.atom "VCC";
                    S.list [ S.atom "libraryRef"; S.atom "cells" ] ] ] ] ]
    else []
  in
  (* Nets: for every netlist net, one EDIF net joining its driver port to
     every sink port.  Signals Zero/One join the GND/VCC nets. *)
  let portref port = S.list [ S.atom "portRef"; name_sexp port ] in
  let portref_on port inst =
    S.list
      [ S.atom "portRef";
        S.atom port;
        S.list [ S.atom "instanceRef"; S.atom inst ] ]
  in
  (* connection points per net id, and for the two constants *)
  let net_points : (int, S.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let gnd_points = ref [] and vcc_points = ref [] in
  let add_point signal point =
    match signal with
    | N.Zero -> gnd_points := point :: !gnd_points
    | N.One -> vcc_points := point :: !vcc_points
    | N.Net n ->
      let cell =
        match Hashtbl.find_opt net_points n with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace net_points n r;
          r
      in
      cell := point :: !cell
  in
  (* Drivers. *)
  List.iter
    (fun (name, nets) ->
       let width = Array.length nets in
       Array.iteri
         (fun i n -> add_point (N.Net n) (portref (port_bit_name name width i)))
         nets)
    t.N.inputs;
  List.iteri
    (fun idx (c : N.cell) ->
       let _, output = cell_ports c.N.kind in
       add_point (N.Net c.N.out) (portref_on output (instance_name idx)))
    (Array.to_list t.N.cells);
  if uses_gnd then gnd_points := portref_on "Y" gnd_instance :: !gnd_points;
  if uses_vcc then vcc_points := portref_on "Y" vcc_instance :: !vcc_points;
  (* Sinks. *)
  List.iteri
    (fun idx (c : N.cell) ->
       let inputs, _ = cell_ports c.N.kind in
       List.iteri
         (fun k port -> add_point c.N.inputs.(k) (portref_on port (instance_name idx)))
         inputs)
    (Array.to_list t.N.cells);
  List.iter
    (fun (name, signals) ->
       let width = Array.length signals in
       Array.iteri
         (fun i s -> add_point s (portref (port_bit_name name width i)))
         signals)
    t.N.outputs;
  let net_name n = Printf.sprintf "$%d" n in
  let nets =
    (Hashtbl.fold (fun n points acc -> (n, points) :: acc) net_points []
     |> List.sort compare
     |> List.filter_map (fun (n, points) ->
         if List.length !points < 2 && fanout.(n) = 0 then None
         else
           Some
             (S.list
                [ S.atom "net";
                  name_sexp (net_name n);
                  S.list (S.atom "joined" :: List.rev !points) ])))
    @ (if !gnd_points = [] then []
       else
         [ S.list
             [ S.atom "net";
               name_sexp "$gnd";
               S.list (S.atom "joined" :: List.rev !gnd_points) ] ])
    @
    if !vcc_points = [] then []
    else
      [ S.list
          [ S.atom "net";
            name_sexp "$vcc";
            S.list (S.atom "joined" :: List.rev !vcc_points) ] ]
  in
  let contents = S.list ((S.atom "contents" :: instances) @ const_instances @ nets) in
  let design_cell =
    S.list
      [ S.atom "cell";
        name_sexp t.N.name;
        S.list [ S.atom "cellType"; S.atom "GENERIC" ];
        S.list
          [ S.atom "view";
            S.atom "netlist";
            S.list [ S.atom "viewType"; S.atom "NETLIST" ];
            interface;
            contents ] ]
  in
  let design_library =
    S.list
      [ S.atom "library";
        S.atom "DESIGN";
        S.list [ S.atom "edifLevel"; S.atom "0" ];
        S.list [ S.atom "technology"; S.list [ S.atom "numberDefinition" ] ];
        design_cell ]
  in
  S.list
    [ S.atom "edif";
      name_sexp t.N.name;
      S.list [ S.atom "edifVersion"; S.atom "2"; S.atom "0"; S.atom "0" ];
      S.list [ S.atom "edifLevel"; S.atom "0" ];
      S.list [ S.atom "keywordMap"; S.list [ S.atom "keywordLevel"; S.atom "0" ] ];
      cells_library;
      design_library;
      S.list
        [ S.atom "design";
          name_sexp t.N.name;
          S.list
            [ S.atom "cellRef";
              name_sexp t.N.name;
              S.list [ S.atom "libraryRef"; S.atom "DESIGN" ] ] ] ]

let to_string t = S.to_string (to_sexp t)

(* --- Parsing ------------------------------------------------------------- *)

type parsed_instance = {
  kind : string;  (* cell name: a gate, GND or VCC *)
}

let find1 ~tag sexp what =
  match S.find ~tag sexp with
  | Some s -> s
  | None -> error "missing (%s ...) in %s" tag what

let of_sexp sexp =
  (match S.tag sexp with
   | Some tag when String.lowercase_ascii tag = "edif" -> ()
   | _ -> error "not an EDIF file");
  (* Find the design cell: prefer the library named DESIGN, else the last
     library's last cell. *)
  let libraries = S.find_all ~tag:"library" sexp in
  if libraries = [] then error "no libraries";
  let design_lib =
    match
      List.find_opt
        (fun lib ->
           match lib with
           | S.List (_ :: name :: _) ->
             String.uppercase_ascii (original_of_name_sexp name) = "DESIGN"
           | _ -> false)
        libraries
    with
    | Some lib -> lib
    | None -> List.nth libraries (List.length libraries - 1)
  in
  let design_cells = S.find_all ~tag:"cell" design_lib in
  if design_cells = [] then error "design library has no cells";
  let cell = List.nth design_cells (List.length design_cells - 1) in
  let module_name =
    match cell with
    | S.List (_ :: name :: _) -> original_of_name_sexp name
    | _ -> error "malformed design cell"
  in
  let view = find1 ~tag:"view" cell "design cell" in
  let interface = find1 ~tag:"interface" view "view" in
  let contents = find1 ~tag:"contents" view "view" in
  (* Ports: gather per-base-name bit sets. *)
  let port_dir = Hashtbl.create 16 in
  let port_bits : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let port_order = ref [] in
  List.iter
    (fun port ->
       match port with
       | S.List (_ :: name :: rest) ->
         let original = original_of_name_sexp name in
         let dir =
           match
             List.find_map
               (fun item ->
                  match item with
                  | S.List [ S.Atom d; S.Atom v ]
                    when String.lowercase_ascii d = "direction" ->
                    Some (String.uppercase_ascii v)
                  | _ -> None)
               rest
           with
           | Some d -> d
           | None -> error "port %s has no direction" original
         in
         let base, bit = parse_port_bit original in
         if not (Hashtbl.mem port_bits base) then begin
           Hashtbl.replace port_bits base (ref []);
           port_order := base :: !port_order
         end;
         let bits = Hashtbl.find port_bits base in
         bits := Option.value bit ~default:0 :: !bits;
         Hashtbl.replace port_dir base dir
       | _ -> error "malformed port")
    (S.find_all ~tag:"port" interface);
  let port_order = List.rev !port_order in
  (* Instances. *)
  let instances : (string, parsed_instance) Hashtbl.t = Hashtbl.create 64 in
  let instance_order = ref [] in
  List.iter
    (fun inst ->
       match inst with
       | S.List (_ :: name :: rest) ->
         let iname = original_of_name_sexp name in
         let view_ref =
           match
             List.find_opt
               (fun item ->
                  match S.tag item with
                  | Some t -> String.lowercase_ascii t = "viewref"
                  | None -> false)
               rest
           with
           | Some vr -> vr
           | None -> error "instance %s has no viewRef" iname
         in
         let cell_ref = find1 ~tag:"cellRef" view_ref "viewRef" in
         let kind =
           match cell_ref with
           | S.List (_ :: kname :: _) -> original_of_name_sexp kname
           | _ -> error "malformed cellRef"
         in
         Hashtbl.replace instances iname { kind };
         instance_order := iname :: !instance_order
       | _ -> error "malformed instance")
    (S.find_all ~tag:"instance" contents);
  let instance_order = List.rev !instance_order in
  (* Nets: (port, instance option) connection points. *)
  let nets =
    List.map
      (fun net ->
         match net with
         | S.List (_ :: name :: rest) ->
           let nname = original_of_name_sexp name in
           let joined =
             match
               List.find_opt
                 (fun item ->
                    match S.tag item with
                    | Some t -> String.lowercase_ascii t = "joined"
                    | None -> false)
                 rest
             with
             | Some j -> j
             | None -> error "net %s has no joined" nname
           in
           let points =
             List.map
               (fun pr ->
                  match pr with
                  | S.List (S.Atom _ :: pname :: rest') ->
                    let port = original_of_name_sexp pname in
                    let inst =
                      List.find_map
                        (fun item ->
                           match item with
                           | S.List [ S.Atom t; iname ]
                             when String.lowercase_ascii t = "instanceref" ->
                             Some (original_of_name_sexp iname)
                           | _ -> None)
                        rest'
                    in
                    (port, inst)
                  | _ -> error "malformed portRef in net %s" nname)
               (S.find_all ~tag:"portRef" joined)
           in
           (nname, points)
         | _ -> error "malformed net")
      (S.find_all ~tag:"net" contents)
  in
  (* Build the netlist. *)
  let b = N.Builder.create module_name in
  (* Input ports (in interface order). *)
  let input_bits : (string * int, N.signal) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun base ->
       if Hashtbl.find port_dir base = "INPUT" then begin
         let bits = !(Hashtbl.find port_bits base) in
         let width = List.fold_left max 0 bits + 1 in
         let signals = N.Builder.add_input b base width in
         Array.iteri (fun i s -> Hashtbl.replace input_bits (base, i) s) signals
       end)
    port_order;
  (* Map each net to its driving source. *)
  let driver_of_net points =
    List.find_map
      (fun (port, inst) ->
         match inst with
         | None ->
           (* A module port: drivers are input ports. *)
           let base, bit = parse_port_bit port in
           if Hashtbl.find_opt port_dir base = Some "INPUT" then
             Some (`Input (base, Option.value bit ~default:0))
           else None
         | Some iname ->
           let { kind } = try Hashtbl.find instances iname with Not_found ->
             error "portRef to unknown instance %s" iname
           in
           if kind = "GND" && port = "Y" then Some `Gnd
           else if kind = "VCC" && port = "Y" then Some `Vcc
           else
             (match N.kind_of_name kind with
              | Some k ->
                let _, output = cell_ports k in
                if port = output then Some (`Cell iname) else None
              | None -> error "unknown cell kind %s" kind))
      points
  in
  (* instance -> (input port -> net index); net list indexed *)
  let nets = Array.of_list nets in
  let net_of_sink : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  let output_port_net : (string, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun net_idx (_, points) ->
       List.iter
         (fun (port, inst) ->
            match inst with
            | Some iname -> Hashtbl.replace net_of_sink (iname, port) net_idx
            | None ->
              let base, _ = parse_port_bit port in
              if Hashtbl.find_opt port_dir base = Some "OUTPUT" then
                Hashtbl.replace output_port_net port net_idx)
         points)
    nets;
  (* Demand-driven construction. *)
  let signal_memo : (int, N.signal) Hashtbl.t = Hashtbl.create 64 in
  let instance_out : (string, N.signal) Hashtbl.t = Hashtbl.create 64 in
  let busy : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Flip-flops first, as placeholders. *)
  List.iter
    (fun iname ->
       let { kind } = Hashtbl.find instances iname in
       match N.kind_of_name kind with
       | Some N.Dff_p -> Hashtbl.replace instance_out iname (N.Builder.dff_placeholder b ~edge:`Pos)
       | Some N.Dff_n -> Hashtbl.replace instance_out iname (N.Builder.dff_placeholder b ~edge:`Neg)
       | _ -> ())
    instance_order;
  let rec signal_of_net net_idx =
    match Hashtbl.find_opt signal_memo net_idx with
    | Some s -> s
    | None ->
      let nname, points = nets.(net_idx) in
      let s =
        match driver_of_net points with
        | Some (`Input (base, bit)) ->
          (try Hashtbl.find input_bits (base, bit) with Not_found ->
            error "net %s driven by unknown input %s[%d]" nname base bit)
        | Some `Gnd -> N.Zero
        | Some `Vcc -> N.One
        | Some (`Cell iname) -> instance_signal iname
        | None -> error "net %s has no driver" nname
      in
      Hashtbl.replace signal_memo net_idx s;
      s
  and instance_signal iname =
    match Hashtbl.find_opt instance_out iname with
    | Some s -> s
    | None ->
      if Hashtbl.mem busy iname then error "combinational cycle through %s" iname;
      Hashtbl.replace busy iname ();
      let { kind } = Hashtbl.find instances iname in
      let k =
        match N.kind_of_name kind with
        | Some k -> k
        | None -> error "unknown cell kind %s" kind
      in
      let inputs, _ = cell_ports k in
      let input_signals =
        List.map
          (fun port ->
             match Hashtbl.find_opt net_of_sink (iname, port) with
             | Some net_idx -> signal_of_net net_idx
             | None -> error "instance %s input %s unconnected" iname port)
          inputs
      in
      let s = N.Builder.raw_cell b k (Array.of_list input_signals) in
      Hashtbl.remove busy iname;
      Hashtbl.replace instance_out iname s;
      s
  in
  (* Connect flip-flop D inputs. *)
  List.iter
    (fun iname ->
       let { kind } = Hashtbl.find instances iname in
       match N.kind_of_name kind with
       | Some (N.Dff_p | N.Dff_n) ->
         let d =
           match Hashtbl.find_opt net_of_sink (iname, "D") with
           | Some net_idx -> signal_of_net net_idx
           | None -> error "flip-flop %s has unconnected D" iname
         in
         N.Builder.connect_dff b ~q:(Hashtbl.find instance_out iname) ~d
       | _ -> ())
    instance_order;
  (* Output ports. *)
  List.iter
    (fun base ->
       if Hashtbl.find port_dir base = "OUTPUT" then begin
         let bits = !(Hashtbl.find port_bits base) in
         let width = List.fold_left max 0 bits + 1 in
         let signals =
           Array.init width (fun i ->
               match Hashtbl.find_opt output_port_net (port_bit_name base width i) with
               | Some net_idx -> signal_of_net net_idx
               | None -> N.Zero)
         in
         N.Builder.set_output b base signals
       end)
    port_order;
  N.Builder.build b

let of_string src = of_sexp (S.parse_string src)

let line_count src =
  List.length (String.split_on_char '\n' src)
  - (if String.length src > 0 && src.[String.length src - 1] = '\n' then 1 else 0)
