(** EDIF 2 0 0 netlist interchange (section 4.2).

    The paper's pipeline passes netlists from Yosys to edif2qmasm as EDIF —
    "a single, large s-expression, which makes it easy to parse
    mechanically".  This module serializes a [Qac_netlist.Netlist.t] to EDIF
    text and parses such text back, enabling the textual
    Verilog -> EDIF -> QMASM pipeline (and its section 6.1 line-count
    metrics) to be reproduced faithfully.

    Conventions (matching Yosys output closely enough for our purposes):
    - one [cells] library declares every gate used, one [DESIGN] library
      holds the module;
    - multi-bit ports emit one scalar port per bit via
      [(rename out_3_ "out[3]")];
    - constant drivers appear as [GND]/[VCC] instances;
    - instances are named [id00001], [id00002], ... in cell order. *)


val to_sexp : Qac_netlist.Netlist.t -> Qac_sexp.Sexp.t
val to_string : Qac_netlist.Netlist.t -> string

val of_sexp : Qac_sexp.Sexp.t -> Qac_netlist.Netlist.t
val of_string : string -> Qac_netlist.Netlist.t

val line_count : string -> int
(** Lines in a rendered EDIF file — the section 6.1 size metric. *)
