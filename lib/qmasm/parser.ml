(** Line-oriented parser for QMASM source. *)

let error fmt = Qac_diag.Diag.error ~stage:"qmasm-parse" fmt

(* --- Assertion expressions --------------------------------------------- *)

(* A small Pratt parser over the character string following "!assert". *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None
let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t') ->
    advance c;
    skip_ws c
  | _ -> ()

let looking_at c s =
  c.pos + String.length s <= String.length c.src
  && String.sub c.src c.pos (String.length s) = s

let accept c s =
  skip_ws c;
  if looking_at c s then begin
    c.pos <- c.pos + String.length s;
    true
  end
  else false

let is_sym_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' | '.' | '@' -> true
  | _ -> false

let read_symbol c =
  skip_ws c;
  let start = c.pos in
  while (match peek c with Some ch -> is_sym_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then error "expected symbol at column %d" start;
  String.sub c.src start (c.pos - start)

let read_int c =
  skip_ws c;
  let start = c.pos in
  while (match peek c with Some ('0' .. '9') -> true | _ -> false) do
    advance c
  done;
  if c.pos = start then error "expected number at column %d" start;
  int_of_string (String.sub c.src start (c.pos - start))

(* Symbol, possibly with [i] or [msb:lsb]. *)
let read_operand_symbol c =
  let name = read_symbol c in
  if accept c "[" then begin
    let first = read_int c in
    if accept c ":" then begin
      let lsb = read_int c in
      if not (accept c "]") then error "expected ]";
      Ast.Sym_range (name, first, lsb)
    end
    else begin
      if not (accept c "]") then error "expected ]";
      Ast.Sym_bit (name, first)
    end
  end
  else Ast.Sym name

let rec parse_aexpr c = parse_arith c 1

and parse_arith c min_bp =
  let lhs = ref (parse_aunary c) in
  let continue_ = ref true in
  while !continue_ do
    skip_ws c;
    let try_op s op bp =
      if bp >= min_bp && accept c s then begin
        let rhs = parse_arith c (bp + 1) in
        lhs := Ast.Arith (op, !lhs, rhs);
        true
      end
      else false
    in
    (* Single-character operators must not swallow the first character of
       "/=", "&&" or "||". *)
    let not_at s =
      skip_ws c;
      not (looking_at c s)
    in
    let matched =
      try_op "<<" Ast.A_shl 4 || try_op ">>" Ast.A_shr 4 || try_op "+" Ast.A_add 5
      || try_op "-" Ast.A_sub 5 || try_op "*" Ast.A_mul 6 || try_op "%" Ast.A_mod 6
      || try_op "//" Ast.A_div 6
      || (not_at "/=" && try_op "/" Ast.A_div 6)
      || (not_at "&&" && try_op "&" Ast.A_and 2)
      || try_op "^" Ast.A_xor 3
      || (not_at "||" && try_op "|" Ast.A_or 1)
    in
    if not matched then continue_ := false
  done;
  !lhs

and parse_aunary c =
  skip_ws c;
  if accept c "-" then Ast.Neg (parse_aunary c)
  else if accept c "~" then Ast.Bnot (parse_aunary c)
  else if accept c "(" then begin
    let e = parse_aexpr c in
    skip_ws c;
    if not (accept c ")") then error "expected )";
    e
  end
  else begin
    skip_ws c;
    match peek c with
    | Some '0' .. '9' -> Ast.Int (read_int c)
    | _ -> read_operand_symbol c
  end

let parse_cmp c =
  let lhs = parse_aexpr c in
  skip_ws c;
  let op =
    if accept c "/=" then Ast.C_ne
    else if accept c "!=" then Ast.C_ne
    else if accept c "<=" then Ast.C_le
    else if accept c ">=" then Ast.C_ge
    else if accept c "<" then Ast.C_lt
    else if accept c ">" then Ast.C_gt
    else if accept c "==" then Ast.C_eq
    else if accept c "=" then Ast.C_eq
    else error "expected comparison operator at column %d" c.pos
  in
  let rhs = parse_aexpr c in
  Ast.Cmp (op, lhs, rhs)

let rec parse_bexpr c =
  let lhs = parse_band c in
  if accept c "||" then Ast.Or (lhs, parse_bexpr c) else lhs

and parse_band c =
  let lhs = parse_cmp c in
  if accept c "&&" then Ast.And (lhs, parse_band c) else lhs

let parse_assertion src =
  let c = { src; pos = 0 } in
  let b = parse_bexpr c in
  skip_ws c;
  (match peek c with
   | Some _ -> error "trailing characters in assertion: %s" src
   | None -> ());
  b

(* --- Pins ---------------------------------------------------------------- *)

(* "C[7:0] := 10001111", "A := true", "x := 5" (integer fits the range). *)
let parse_pin lhs rhs =
  let c = { src = lhs; pos = 0 } in
  let operand = read_operand_symbol c in
  skip_ws c;
  (match peek c with
   | Some _ -> error "bad pin target %s" lhs
   | None -> ());
  let rhs = String.trim rhs in
  let bool_of s =
    match String.lowercase_ascii s with
    | "true" | "1" -> true
    | "false" | "0" -> false
    | _ -> error "bad pin value %s" s
  in
  match operand with
  | Ast.Sym name -> [ (name, bool_of rhs) ]
  | Ast.Sym_bit (name, i) -> [ (Printf.sprintf "%s[%d]" name i, bool_of rhs) ]
  | Ast.Sym_range (name, msb, lsb) ->
    let width = abs (msb - lsb) + 1 in
    let step = if msb >= lsb then -1 else 1 in
    let bits =
      if String.for_all (fun ch -> ch = '0' || ch = '1') rhs
         && String.length rhs = width then
        (* A binary string, MSB first. *)
        List.init width (fun k -> rhs.[k] = '1')
      else
        match int_of_string_opt rhs with
        | Some v ->
          if v < 0 || (width < 62 && v >= 1 lsl width) then
            error "pin value %d out of range for %d bits" v width
          else List.init width (fun k -> (v lsr (width - 1 - k)) land 1 = 1)
        | None -> error "bad pin value %s" rhs
    in
    (* Pair MSB-first bit values with indices msb, msb+step, ... *)
    List.mapi (fun k bit -> (Printf.sprintf "%s[%d]" name (msb + (k * step)), bit)) bits
  | _ -> error "bad pin target %s" lhs

(* --- Statements ----------------------------------------------------------- *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let split_ws s =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) s)
  |> List.filter (fun t -> t <> "")

let parse_line line_number line =
  let line = strip_comment line in
  let trimmed = String.trim line in
  if trimmed = "" then []
  else begin
    let fail fmt = Qac_diag.Diag.error ~stage:"qmasm-parse" ~line:line_number fmt in
    Qac_diag.Diag.locate ~line:line_number @@ fun () ->
      if String.length trimmed > 0 && trimmed.[0] = '!' then begin
        let tokens = split_ws trimmed in
        match tokens with
        | "!include" :: rest ->
          let arg = String.concat " " rest in
          let arg = String.trim arg in
          let arg =
            let n = String.length arg in
            if n >= 2
               && ((arg.[0] = '"' && arg.[n - 1] = '"')
                  || (arg.[0] = '<' && arg.[n - 1] = '>'))
            then String.sub arg 1 (n - 2)
            else arg
          in
          [ Ast.Include arg ]
        | [ "!begin_macro"; name ] -> [ Ast.Begin_macro name ]
        | [ "!end_macro"; name ] -> [ Ast.End_macro name ]
        | "!use_macro" :: name :: insts when insts <> [] ->
          [ Ast.Use_macro (name, insts) ]
        | [ "!alias"; a; b ] -> [ Ast.Alias (a, b) ]
        | "!assert" :: _ ->
          let body = String.sub trimmed 7 (String.length trimmed - 7) in
          [ Ast.Assertion (parse_assertion body) ]
        | directive :: _ -> fail "unknown or malformed directive %s" directive
        | [] -> assert false
      end
      else begin
        (* Pin lines contain ":=". *)
        match Str_split.find_substring trimmed ":=" with
        | Some i ->
          let lhs = String.sub trimmed 0 i in
          let rhs = String.sub trimmed (i + 2) (String.length trimmed - i - 2) in
          [ Ast.Pin (parse_pin (String.trim lhs) rhs) ]
        | None ->
          let tokens = split_ws trimmed in
          (match tokens with
           | [ a; "="; b ] -> [ Ast.Chain (a, b) ]
           | [ a; "/="; b ] -> [ Ast.Anti_chain (a, b) ]
           | [ a; w ] ->
             (match float_of_string_opt w with
              | Some weight -> [ Ast.Weight (a, weight) ]
              | None -> fail "bad weight %s" w)
           | [ a; b; j ] ->
             (match float_of_string_opt j with
              | Some strength -> [ Ast.Coupler (a, b, strength) ]
              | None -> fail "bad coupler strength %s" j)
           | _ -> fail "unrecognized statement: %s" trimmed)
      end
  end

let parse_string src =
  String.split_on_char '\n' src
  |> List.mapi (fun i line -> parse_line (i + 1) line)
  |> List.concat

let line_count src =
  (* Statement-bearing lines, the section 6.1 metric. *)
  String.split_on_char '\n' src
  |> List.filter (fun line -> String.trim (strip_comment line) <> "")
  |> List.length
