(** Facade over the QMASM toolchain: parse, expand, assemble — and report.
    Stage failures raise [Qac_diag.Diag.Error] with their own provenance
    (["qmasm-parse"], ["qmasm-expand"], ["qmasm-assemble"]). *)

(** [load ?options ?resolve src] runs the full front half of qmasm:
    [resolve] supplies [!include] file contents (return [None] for unknown
    names). *)
let load ?options ?(resolve = fun _ -> None) src =
  let stmts = Parser.parse_string src in
  let flat = Macro.expand ~resolve stmts in
  Assemble.assemble ?options flat

(** Render a solution the way qmasm does: visible symbols, sorted, with
    assertion outcomes. *)
let report (a : Assemble.t) spins =
  let assignment = Assemble.visible_assignment a spins in
  let lookup name =
    match List.assoc_opt name (Assemble.assignment_of_spins a spins) with
    | Some v -> v
    | None ->
      Qac_diag.Diag.error ~stage:"qmasm" "assertion references unknown symbol %s" name
  in
  let checks = Assemble.check_assertions a lookup in
  (List.sort compare assignment, checks)

let to_minizinc = Minizinc.of_program
