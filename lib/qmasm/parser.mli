(** Line-oriented parser for QMASM source (section 4.3's language). *)


val parse_string : string -> Ast.stmt list
(** Raises [Error] with a line number on malformed input. *)

val parse_assertion : string -> Ast.bexpr
(** Parse the expression following [!assert]. *)

val parse_pin : string -> string -> (string * bool) list
(** [parse_pin lhs rhs] expands a pin like ["C[7:0]"] / ["10001111"] into
    per-bit assignments.  Vector values may be binary strings (sized by the
    bracket range) or decimal integers; scalars accept true/false/0/1. *)

val line_count : string -> int
(** Statement-bearing lines (blank and comment-only lines excluded) — the
    section 6.1 size metric. *)
