(** Facade over the QMASM toolchain: parse -> expand -> assemble, and
    solution reporting. *)


(** [load ?options ?resolve src] runs the full front half of qmasm;
    [resolve] supplies [!include] file contents ([None] for unknown
    names). *)
val load :
  ?options:Assemble.options ->
  ?resolve:(string -> string option) ->
  string ->
  Assemble.t

(** [report program spins] renders a solution the way qmasm does: visible
    symbols (no ["$"]), sorted, plus per-assertion outcomes. *)
val report :
  Assemble.t ->
  Qac_ising.Problem.spin array ->
  (string * bool) list * (Ast.bexpr * bool) list

val to_minizinc : Assemble.t -> string
