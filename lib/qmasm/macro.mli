(** Macro and include expansion.

    [!use_macro M inst] instantiates macro [M] with every symbol prefixed by
    ["inst."] (so [A] inside the macro becomes [inst.A], referable from the
    outside, as in section 4.3.5's Listing 4).  Macros may use other macros;
    prefixes compose.  [!include <file>] splices another source file, with
    file contents supplied by [resolve] so the standard-cell library can
    live in memory. *)


val expand : resolve:(string -> string option) -> Ast.stmt list -> Ast.stmt list
(** The result contains no [Include], [Begin_macro], [End_macro] or
    [Use_macro] statements.  Raises [Error] on undefined or unterminated
    macros, circular includes, and unresolvable files. *)
