(** Macro and include expansion.

    [!use_macro M inst] instantiates macro [M] with every symbol prefixed by
    ["inst."] (so [A] inside the macro becomes [inst.A], referable from the
    outside as in section 4.3.5's Listing 4).  Macros may use other macros;
    prefixes compose.  [!include <file>] splices another source file, with
    file contents supplied by a [resolve] callback so the standard-cell
    library can live in memory. *)

let error fmt = Qac_diag.Diag.error ~stage:"qmasm-expand" fmt

let rename_stmt ~f (stmt : Ast.stmt) =
  match stmt with
  | Ast.Weight (a, w) -> Ast.Weight (f a, w)
  | Ast.Coupler (a, b, j) -> Ast.Coupler (f a, f b, j)
  | Ast.Chain (a, b) -> Ast.Chain (f a, f b)
  | Ast.Anti_chain (a, b) -> Ast.Anti_chain (f a, f b)
  | Ast.Pin pins -> Ast.Pin (List.map (fun (name, v) -> (f name, v)) pins)
  | Ast.Alias (a, b) -> Ast.Alias (f a, f b)
  | Ast.Assertion b -> Ast.Assertion (Ast.map_bexpr ~f b)
  | Ast.Include _ | Ast.Begin_macro _ | Ast.End_macro _ -> stmt
  | Ast.Use_macro (m, insts) -> Ast.Use_macro (m, List.map f insts)

(* Pin syntax creates names like "C[7:0]" whose base symbol must be
   prefixed, not the brackets. *)
let prefix_symbol prefix name = prefix ^ name

let max_expansion_depth = 64

let expand ~resolve stmts =
  let macros : (string, Ast.stmt list) Hashtbl.t = Hashtbl.create 16 in
  let rec go depth ~prefix ~include_stack stmts =
    if depth > max_expansion_depth then error "macro expansion too deep";
    let rec loop acc = function
      | [] -> List.rev acc
      | Ast.Begin_macro name :: rest ->
        let rec collect body = function
          | [] -> error "unterminated macro %s" name
          | Ast.End_macro name' :: rest' ->
            if name' <> name then
              error "!end_macro %s does not match !begin_macro %s" name' name;
            (List.rev body, rest')
          | stmt :: rest' -> collect (stmt :: body) rest'
        in
        let body, rest = collect [] rest in
        if Hashtbl.mem macros name then error "macro %s redefined" name;
        Hashtbl.replace macros name body;
        loop acc rest
      | Ast.End_macro name :: _ -> error "stray !end_macro %s" name
      | Ast.Use_macro (name, insts) :: rest ->
        let body =
          match Hashtbl.find_opt macros name with
          | Some body -> body
          | None -> error "use of undefined macro %s" name
        in
        let expanded =
          List.concat_map
            (fun inst ->
               let renamed =
                 List.map
                   (rename_stmt ~f:(prefix_symbol (prefix ^ inst ^ ".")))
                   body
               in
               (* A macro body's own Use_macro instances were renamed with
                  the full prefix; expand them without re-prefixing. *)
               go (depth + 1) ~prefix:"" ~include_stack renamed)
            insts
        in
        loop (List.rev_append expanded acc) rest
      | Ast.Include file :: rest ->
        if List.mem file include_stack then error "circular !include of %s" file;
        let text =
          match resolve file with
          | Some text -> text
          | None -> error "cannot resolve !include %s" file
        in
        let included =
          go (depth + 1) ~prefix ~include_stack:(file :: include_stack)
            (Parser.parse_string text)
        in
        loop (List.rev_append included acc) rest
      | stmt :: rest -> loop (rename_stmt ~f:(prefix_symbol prefix) stmt :: acc) rest
    in
    loop [] stmts
  in
  go 0 ~prefix:"" ~include_stack:[] stmts
