open Qac_ising

let error fmt = Qac_diag.Diag.error ~stage:"qmasm-assemble" fmt

type options = {
  merge_chains : bool;
  chain_strength : float option;
  pin_strength : float option;
}

let default_options = { merge_chains = false; chain_strength = None; pin_strength = None }

type t = {
  problem : Problem.t;
  symbols_of_var : string list array;
  pins : (string * bool) list;
  chains : (string * string) list;
  assertions : Ast.bexpr list;
  chain_strength : float;
  pin_strength : float;
}

(* Union-find over symbol names. *)
module Uf = struct
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find uf x =
    match Hashtbl.find_opt uf x with
    | None -> x
    | Some parent ->
      let root = find uf parent in
      if root <> parent then Hashtbl.replace uf x root;
      root

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then Hashtbl.replace uf rb ra
end

let assemble ?(options = default_options) stmts =
  (* Pass 1: symbol table (first-occurrence order) and merges. *)
  let uf = Uf.create () in
  let order = ref [] in
  let seen = Hashtbl.create 64 in
  let touch s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      order := s :: !order
    end
  in
  let max_literal_j = ref 0.0 in
  List.iter
    (fun stmt ->
       match stmt with
       | Ast.Weight (a, _) -> touch a
       | Ast.Coupler (a, b, j) ->
         touch a;
         touch b;
         max_literal_j := Float.max !max_literal_j (Float.abs j)
       | Ast.Chain (a, b) ->
         touch a;
         touch b;
         if options.merge_chains then Uf.union uf a b
       | Ast.Anti_chain (a, b) ->
         touch a;
         touch b
       | Ast.Pin pins -> List.iter (fun (name, _) -> touch name) pins
       | Ast.Alias (a, b) ->
         touch a;
         touch b;
         Uf.union uf a b
       | Ast.Assertion b -> List.iter touch (Ast.bexpr_syms b)
       | Ast.Include f -> error "unexpanded !include %s (run Macro.expand first)" f
       | Ast.Begin_macro m | Ast.End_macro m | Ast.Use_macro (m, _) ->
         error "unexpanded macro construct %s (run Macro.expand first)" m)
    stmts;
  let order = List.rev !order in
  let var_of_root = Hashtbl.create 64 in
  let num_vars = ref 0 in
  List.iter
    (fun s ->
       let root = Uf.find uf s in
       if not (Hashtbl.mem var_of_root root) then begin
         Hashtbl.replace var_of_root root !num_vars;
         incr num_vars
       end)
    order;
  let var s = Hashtbl.find var_of_root (Uf.find uf s) in
  let symbols_of_var = Array.make !num_vars [] in
  List.iter (fun s -> symbols_of_var.(var s) <- s :: symbols_of_var.(var s)) order;
  Array.iteri (fun i syms -> symbols_of_var.(i) <- List.rev syms) symbols_of_var;
  let chain_strength =
    match options.chain_strength with
    | Some s -> s
    | None -> if !max_literal_j > 0.0 then 2.0 *. !max_literal_j else 2.0
  in
  let pin_strength =
    match options.pin_strength with
    | Some s -> s
    | None -> chain_strength
  in
  (* Pass 2: accumulate the Hamiltonian. *)
  let builder = Problem.Builder.create ~num_vars:!num_vars () in
  let pins = ref [] in
  let chains = ref [] in
  let assertions = ref [] in
  let add_j a b j =
    let va = var a and vb = var b in
    if va = vb then
      (* Both endpoints merged into one variable: sigma^2 = 1. *)
      Problem.Builder.add_offset builder j
    else Problem.Builder.add_j builder va vb j
  in
  List.iter
    (fun stmt ->
       match stmt with
       | Ast.Weight (a, w) -> Problem.Builder.add_h builder (var a) w
       | Ast.Coupler (a, b, j) -> add_j a b j
       | Ast.Chain (a, b) ->
         chains := (a, b) :: !chains;
         if not options.merge_chains then add_j a b (-.chain_strength)
       | Ast.Anti_chain (a, b) ->
         if var a = var b then error "anti-chain between merged symbols %s and %s" a b;
         add_j a b chain_strength
       | Ast.Pin pin_list ->
         List.iter
           (fun (name, value) ->
              pins := (name, value) :: !pins;
              Problem.Builder.add_h builder (var name)
                (if value then -.pin_strength else pin_strength))
           pin_list
       | Ast.Alias _ -> ()
       | Ast.Assertion b -> assertions := b :: !assertions
       | Ast.Include _ | Ast.Begin_macro _ | Ast.End_macro _ | Ast.Use_macro _ ->
         assert false)
    stmts;
  let problem = Problem.Builder.build builder in
  (* The builder only grows to the highest touched variable; pad so every
     symbol has a slot even if it carries no coefficients. *)
  let problem =
    if problem.Problem.num_vars = !num_vars then problem
    else
      Problem.relabel problem
        (Array.init problem.Problem.num_vars (fun i -> i))
        ~num_vars:!num_vars
  in
  { problem;
    symbols_of_var;
    pins = List.rev !pins;
    chains = List.rev !chains;
    assertions = List.rev !assertions;
    chain_strength;
    pin_strength }

let variable t s =
  let rec scan i =
    if i >= Array.length t.symbols_of_var then None
    else if List.mem s t.symbols_of_var.(i) then Some i
    else scan (i + 1)
  in
  scan 0

let num_symbols t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.symbols_of_var

let assignment_of_spins t spins =
  if Array.length spins <> Array.length t.symbols_of_var then
    error "spin vector length %d does not match %d variables" (Array.length spins)
      (Array.length t.symbols_of_var);
  Array.mapi
    (fun v syms -> List.map (fun s -> (s, spins.(v) > 0)) syms)
    t.symbols_of_var
  |> Array.to_list |> List.concat

let visible_assignment t spins =
  List.filter (fun (s, _) -> not (Ast.is_internal_symbol s)) (assignment_of_spins t spins)

(* --- Assertion evaluation ----------------------------------------------- *)

let rec eval_aexpr lookup (e : Ast.aexpr) =
  match e with
  | Ast.Int v -> v
  | Ast.Sym s -> if lookup s then 1 else 0
  | Ast.Sym_bit (s, i) -> if lookup (Printf.sprintf "%s[%d]" s i) then 1 else 0
  | Ast.Sym_range (s, msb, lsb) ->
    let step = if msb >= lsb then -1 else 1 in
    let width = abs (msb - lsb) + 1 in
    let v = ref 0 in
    for k = 0 to width - 1 do
      let idx = msb + (k * step) in
      v := (!v lsl 1) lor (if lookup (Printf.sprintf "%s[%d]" s idx) then 1 else 0)
    done;
    !v
  | Ast.Neg a -> -eval_aexpr lookup a
  | Ast.Bnot a -> lnot (eval_aexpr lookup a)
  | Ast.Lnot b -> if eval_bexpr lookup b then 0 else 1
  | Ast.Arith (op, a, b) ->
    let va = eval_aexpr lookup a and vb = eval_aexpr lookup b in
    (match op with
     | Ast.A_add -> va + vb
     | Ast.A_sub -> va - vb
     | Ast.A_mul -> va * vb
     | Ast.A_div -> if vb = 0 then error "assertion divides by zero" else va / vb
     | Ast.A_mod -> if vb = 0 then error "assertion modulo by zero" else va mod vb
     | Ast.A_and -> va land vb
     | Ast.A_or -> va lor vb
     | Ast.A_xor -> va lxor vb
     | Ast.A_shl -> va lsl vb
     | Ast.A_shr -> va asr vb)

and eval_bexpr lookup (b : Ast.bexpr) =
  match b with
  | Ast.Cmp (op, a, b') ->
    let va = eval_aexpr lookup a and vb = eval_aexpr lookup b' in
    (match op with
     | Ast.C_eq -> va = vb
     | Ast.C_ne -> va <> vb
     | Ast.C_lt -> va < vb
     | Ast.C_le -> va <= vb
     | Ast.C_gt -> va > vb
     | Ast.C_ge -> va >= vb)
  | Ast.And (x, y) -> eval_bexpr lookup x && eval_bexpr lookup y
  | Ast.Or (x, y) -> eval_bexpr lookup x || eval_bexpr lookup y

let check_assertions t lookup =
  List.map (fun b -> (b, eval_bexpr lookup b)) t.assertions
