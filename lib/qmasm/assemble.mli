(** Assembly: flat QMASM statements -> a logical Ising problem plus the
    symbol table, pins and assertions (section 4.3).

    Symbols are mapped to variable indices in first-occurrence order.
    [!alias] always merges symbols; chains ([A = B]) either merge their
    endpoints into one variable (qmasm's optimization, section 4.4) or
    become ferromagnetic couplers of strength [-chain_strength].  Pins add a
    strong bias field.  Per the paper, the default chain strength is twice
    the largest-in-magnitude J value appearing literally in the code. *)


type options = {
  merge_chains : bool;  (** default false: chains stay as couplers *)
  chain_strength : float option;  (** [None]: 2 x max literal |J| *)
  pin_strength : float option;  (** [None]: same default as chains *)
}

val default_options : options

type t = {
  problem : Qac_ising.Problem.t;
  symbols_of_var : string list array;  (** every symbol merged into each variable *)
  pins : (string * bool) list;
  chains : (string * string) list;  (** explicit chain statements, for reports *)
  assertions : Ast.bexpr list;
  chain_strength : float;
  pin_strength : float;
}

val assemble : ?options:options -> Ast.stmt list -> t

val variable : t -> string -> int option
(** Variable index of a symbol (post merging). *)

val num_symbols : t -> int

(** [assignment_of_spins t spins] names every symbol's Boolean value. *)
val assignment_of_spins : t -> Qac_ising.Problem.spin array -> (string * bool) list

(** Same, restricted to symbols without ["$"] (qmasm hides internal
    variables by default). *)
val visible_assignment : t -> Qac_ising.Problem.spin array -> (string * bool) list

(** [check_assertions t lookup] evaluates every [!assert] against a
    solution.  Returns per-assertion outcomes. *)
val check_assertions : t -> (string -> bool) -> (Ast.bexpr * bool) list

val eval_bexpr : (string -> bool) -> Ast.bexpr -> bool
